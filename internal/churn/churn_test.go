package churn

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// TestPoissonDeterministic pins the generator contract: a plan is a pure
// function of its config, every plan validates, and per-node fault streams
// are independent of N — growing the network never perturbs the schedules
// of existing nodes.
func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{
		N: 40, Rounds: 2000, Seed: 99,
		CrashRate: 0.002, MeanDowntime: 40,
		LeaveRate: 0.0005, MeanAbsence: 80,
		InitialAbsent: []int{3, 17},
	}
	a, err := Poisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Poisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatalf("degenerate plan: no events at crash rate %v over %d rounds", cfg.CrashRate, cfg.Rounds)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same config produced %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if err := a.Validate(cfg.N); err != nil {
		t.Fatalf("generated plan must validate: %v", err)
	}

	// Node independence: the same nodes in a larger network keep their
	// schedules exactly.
	big := cfg
	big.N = 60
	c, err := Poisson(big)
	if err != nil {
		t.Fatal(err)
	}
	perNode := func(p *Plan, u int) []Event {
		var out []Event
		for _, ev := range p.Events {
			if ev.Node == u {
				out = append(out, ev)
			}
		}
		return out
	}
	for u := 0; u < cfg.N; u++ {
		ea, ec := perNode(a, u), perNode(c, u)
		if len(ea) != len(ec) {
			t.Fatalf("node %d schedule changed with N: %d vs %d events", u, len(ea), len(ec))
		}
		for i := range ea {
			if ea[i] != ec[i] {
				t.Fatalf("node %d event %d changed with N: %+v vs %+v", u, i, ea[i], ec[i])
			}
		}
	}

	d, err := Poisson(PoissonConfig{N: 40, Rounds: 2000, Seed: 100, CrashRate: 0.002, MeanDowntime: 40})
	if err != nil {
		t.Fatal(err)
	}
	same := len(d.Events) == len(a.Events)
	if same {
		for i := range d.Events {
			if d.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical %d-event plans", len(a.Events))
	}
}

// TestCrashBurst checks the burst generator: exactly Crashes distinct
// victims, all down at Round and all back at Round+Downtime.
func TestCrashBurst(t *testing.T) {
	p, err := CrashBurst(BurstConfig{N: 50, Round: 10, Crashes: 20, Downtime: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(50); err != nil {
		t.Fatal(err)
	}
	crash, rec := map[int]bool{}, map[int]bool{}
	for _, ev := range p.Events {
		switch ev.Kind {
		case Crash:
			if ev.Round != 10 {
				t.Fatalf("crash at round %d, want 10", ev.Round)
			}
			crash[ev.Node] = true
		case Recover:
			if ev.Round != 25 {
				t.Fatalf("recover at round %d, want 25", ev.Round)
			}
			rec[ev.Node] = true
		default:
			t.Fatalf("unexpected event kind %s", ev.Kind)
		}
	}
	if len(crash) != 20 || len(rec) != 20 {
		t.Fatalf("got %d crashes, %d recovers, want 20 each", len(crash), len(rec))
	}
	for u := range crash {
		if !rec[u] {
			t.Fatalf("node %d crashed but never recovers", u)
		}
	}
}

// TestPlanValidateRejects spot-checks the lifecycle state machine.
func TestPlanValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
	}{
		{"crash down node", FixedScript([]Event{
			{Round: 1, Kind: Crash, Node: 0}, {Round: 2, Kind: Crash, Node: 0}}, nil, nil)},
		{"recover up node", FixedScript([]Event{{Round: 1, Kind: Recover, Node: 0}}, nil, nil)},
		{"leave absent node", FixedScript([]Event{{Round: 1, Kind: Leave, Node: 2}}, nil, []int{2})},
		{"join present node", FixedScript([]Event{{Round: 1, Kind: Join, Node: 0}}, nil, nil)},
		{"two events one round", &Plan{Events: []Event{
			{Round: 3, Kind: Crash, Node: 1}, {Round: 3, Kind: Leave, Node: 1}}}},
		{"round zero", FixedScript([]Event{{Round: 0, Kind: Crash, Node: 0}}, nil, nil)},
		{"node out of range", FixedScript([]Event{{Round: 1, Kind: Crash, Node: 9}}, nil, nil)},
		{"empty fade window", FixedScript(nil, []Fade{{Start: 5, End: 5, Regions: []geo.RegionID{{}}}}, nil)},
		{"fade without regions", FixedScript(nil, []Fade{{Start: 1, End: 2}}, nil)},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted an illegal plan", tc.name)
		}
	}
	ok := FixedScript([]Event{
		{Round: 2, Kind: Crash, Node: 1},
		{Round: 5, Kind: Recover, Node: 1},
		{Round: 7, Kind: Leave, Node: 0},
		{Round: 9, Kind: Join, Node: 0},
		{Round: 4, Kind: Join, Node: 3},
	}, []Fade{{Start: 3, End: 8, Regions: []geo.RegionID{{I: 0, J: 0}}}}, []int{3})
	if err := ok.Validate(4); err != nil {
		t.Fatalf("legal plan rejected: %v", err)
	}
}

// TestFadeSchedulerMasks pins fading semantics on a line whose skip-one
// pairs are unreliable: during the epoch every unreliable edge touching a
// faded region is excluded under all four query paths, and outside the
// epoch the wrapper is transparent — bit-identical to the base scheduler.
func TestFadeSchedulerMasks(t *testing.T) {
	// Line spacing 0.8, r = 1.7: adjacent pairs (0.8) reliable, skip-one
	// pairs (1.6) unreliable grey-zone links.
	d, err := dualgraph.Line(8, 0.8, 1.7, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	edges := d.UnreliableEdges()
	if len(edges) == 0 {
		t.Fatal("fixture has no unreliable edges")
	}
	// Fade the region containing node 3 during rounds [10, 20).
	faded := geo.RegionOf(d.Emb[3])
	inner := sched.NewRandom(0.7, 5)
	f := NewFadeScheduler(inner, d, []Fade{{Start: 10, End: 20, Regions: []geo.RegionID{faded}}})

	touches := func(e dualgraph.Edge) bool {
		return geo.RegionOf(d.Emb[e.U]) == faded || geo.RegionOf(d.Emb[e.V]) == faded
	}
	anyTouches := false
	for _, e := range edges {
		anyTouches = anyTouches || touches(e)
	}
	if !anyTouches {
		t.Fatal("no unreliable edge touches the faded region; fixture broken")
	}

	mask := make([]bool, len(edges))
	ids := make([]int32, len(edges))
	for i := range ids {
		ids[i] = int32(i)
	}
	out := make([]bool, len(edges))
	for round := 1; round <= 30; round++ {
		f.Advance(round)
		inEpoch := round >= 10 && round < 20
		f.IncludedBatch(round, mask)
		f.IncludedFor(round, ids, out)
		for i, e := range edges {
			want := inner.Included(round, i)
			if inEpoch && touches(e) {
				want = false
			}
			if got := f.Included(round, i); got != want {
				t.Fatalf("round %d edge %d: Included=%v want %v", round, i, got, want)
			}
			if mask[i] != want || out[i] != want {
				t.Fatalf("round %d edge %d: batch=%v sparse=%v want %v", round, i, mask[i], out[i], want)
			}
		}
		if v, ok := f.Uniform(round); ok {
			for i := range edges {
				if f.Included(round, i) != v {
					t.Fatalf("round %d: Uniform claimed %v but edge %d disagrees", round, v, i)
				}
			}
		}
	}
}
