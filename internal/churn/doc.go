// Package churn is the deterministic fault-injection layer: it compiles
// seeded fault models into explicit per-round schedules (Plan) and replays
// them against a running engine through the sim.Environment hook (Injector).
//
// The package drives two kinds of faults:
//
//   - Node lifecycle: crash (radio down, protocol state frozen), recover
//     (radio up, protocol restarted from scratch under a fresh incarnation
//     RNG), graceful leave (node detached from the dual graph) and join
//     (node re-attached at its original position). Crashes use the engine's
//     SetDown/ReplaceProc lifecycle hooks; leaves and joins patch the dual
//     graph incrementally (dualgraph.Dual.PatchNode + geo.GridIndex
//     Insert/Delete) and re-sync every topology consumer through
//     Engine.RefreshTopology and the injector's OnTopology callback.
//
//   - Region-level fading: during a fade epoch every unreliable edge with an
//     endpoint in a faded grid region is forced out of the communication
//     graph (FadeScheduler). In the dual-graph model the adversary's power
//     is exactly the grey-zone edge set E′∖E, so fading expresses as forced
//     exclusion layered over the run's base link scheduler; reliable edges
//     are untouched, as the model guarantees.
//
// Everything is deterministic: generators (Poisson, CrashBurst) expand a
// seed into a sorted event list once, before the run, and the injector
// applies events between rounds — so a churned execution is as replayable
// as a churn-free one, and bit-identical across engine drivers and worker
// counts (TestChurnSoak pins this).
package churn
