package churn

import (
	"fmt"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sim"
)

// InjectorConfig assembles a fault-injection run.
type InjectorConfig struct {
	// Plan is the fault schedule; validated against Dual.N() at build time.
	Plan *Plan
	// Dual is the full-universe dual graph the engine runs over. Leave and
	// Join events patch it in place.
	Dual *dualgraph.Dual
	// Index, when non-nil, is the grid index over Dual.Emb; patches keep it
	// in sync and use it for O(density) neighbor discovery. Nil falls back
	// to PatchNode's linear scan.
	Index *geo.GridIndex
	// Policy classifies grey-zone links re-created by Join patches. Must
	// match the policy the dual was built with; GreyMixed is rejected by
	// PatchNode (its construction coin is not replayable mid-run).
	Policy dualgraph.GreyPolicy
	// Restart builds the fresh process installed by Recover and Join
	// events. Required when the plan contains any; the engine initialises
	// the process with an incarnation-salted RNG via ReplaceProc.
	Restart func(u int) sim.Process
	// Inner is an optional wrapped environment (e.g. core.SaturatingEnv);
	// it runs after this round's faults are applied, so it observes the
	// post-fault world.
	Inner sim.Environment
	// Fade, when non-nil, is advanced each round and rebound after every
	// topology patch. Build it over the same Dual and pass it as the
	// engine's Sched (directly or further wrapped).
	Fade *FadeScheduler
	// OnTopology runs after each Leave/Join patch and RefreshTopology,
	// before the round's processes act — the hook for re-syncing stateful
	// topology consumers (e.g. sched.Adaptive.Rebind). An error stops
	// fault injection and surfaces through Err.
	OnTopology func() error
	// OnRestart runs after each Recover/Join installed a fresh process —
	// the hook for environments that hold per-node references (e.g.
	// re-arming a saturating sender, see core.SaturatingEnv.Rearm).
	OnRestart func(u int, p sim.Process)
	// OnDown runs after each Crash/Leave silenced a node, with the round
	// the fault took effect (0 for initially-absent nodes silenced by
	// Attach) — the hook for liveness consumers such as
	// lbspec.Monitor.NodeDown.
	OnDown func(round, node int)
	// OnUp runs after each Recover/Join brought a node back up, with the
	// round it took effect. It pairs with OnDown; unlike OnRestart it
	// carries the round, for consumers tracking incarnations
	// (lbspec.Monitor.NodeRestarted).
	OnUp func(round, node int)
}

// Injector replays a Plan against an engine through the sim.Environment
// hook. Build it with NewInjector, apply the plan's initial detachments
// with Detach *before* sim.New (the engine snapshots topology at
// construction), then hand the engine to Attach and pass the injector as
// the Config.Env.
type Injector struct {
	cfg  InjectorConfig
	eng  *sim.Engine
	pos  []geo.Point // original placements, for Join re-attachment
	next int         // next unapplied plan event
	err  error
}

// NewInjector validates the plan against the dual graph and snapshots the
// node placements (Join re-attaches a node where it originally stood, even
// though detachment leaves the embedding slot stale).
func NewInjector(cfg InjectorConfig) (*Injector, error) {
	if cfg.Plan == nil || cfg.Dual == nil {
		return nil, fmt.Errorf("churn: injector needs a plan and a dual graph")
	}
	if err := cfg.Plan.Validate(cfg.Dual.N()); err != nil {
		return nil, err
	}
	if cfg.Restart == nil {
		for _, ev := range cfg.Plan.Events {
			if ev.Kind == Recover || ev.Kind == Join {
				return nil, fmt.Errorf("churn: plan has %s events but no Restart factory", ev.Kind)
			}
		}
		if len(cfg.Plan.InitialAbsent) > 0 {
			return nil, fmt.Errorf("churn: plan has initially-absent nodes but no Restart factory")
		}
	}
	return &Injector{
		cfg: cfg,
		pos: append([]geo.Point(nil), cfg.Dual.Emb...),
	}, nil
}

// Detach applies the plan's InitialAbsent set to the dual graph. Call it
// before sim.New: the engine reads the (patched) topology at construction,
// while Δ/Δ′ for protocol parameters should be derived from the full
// universe beforehand — the bounds hold for every subgraph.
func (in *Injector) Detach() error {
	for _, u := range in.cfg.Plan.InitialAbsent {
		if err := in.cfg.Dual.PatchNode(u, nil, in.cfg.Index, in.cfg.Policy); err != nil {
			return fmt.Errorf("churn: initial detach of node %d: %w", u, err)
		}
	}
	if in.cfg.Fade != nil && len(in.cfg.Plan.InitialAbsent) > 0 {
		in.cfg.Fade.Rebind()
	}
	return nil
}

// Attach binds the injector to its engine and silences the initially-absent
// nodes (their processes must not transmit into a topology they are not
// part of).
func (in *Injector) Attach(e *sim.Engine) {
	in.eng = e
	for _, u := range in.cfg.Plan.InitialAbsent {
		e.SetDown(u, true)
		if in.cfg.OnDown != nil {
			in.cfg.OnDown(0, u)
		}
	}
}

// Err returns the first fault-application error, if any. Injection stops at
// the first error; the simulation itself keeps running.
func (in *Injector) Err() error { return in.err }

// BeforeRound implements sim.Environment: apply this round's faults, move
// the fade window, then let the wrapped environment act on the post-fault
// world.
func (in *Injector) BeforeRound(t int) {
	for in.err == nil && in.next < len(in.cfg.Plan.Events) && in.cfg.Plan.Events[in.next].Round <= t {
		ev := in.cfg.Plan.Events[in.next]
		in.next++
		if err := in.apply(ev, t); err != nil {
			in.err = fmt.Errorf("churn: %s of node %d in round %d: %w", ev.Kind, ev.Node, t, err)
		}
	}
	if in.cfg.Fade != nil {
		in.cfg.Fade.Advance(t)
	}
	if in.cfg.Inner != nil {
		in.cfg.Inner.BeforeRound(t)
	}
}

// AfterRound implements sim.Environment.
func (in *Injector) AfterRound(t int) {
	if in.cfg.Inner != nil {
		in.cfg.Inner.AfterRound(t)
	}
}

// apply executes one lifecycle event against the engine and dual graph; t
// is the round the event takes effect (passed on to OnDown/OnUp).
func (in *Injector) apply(ev Event, t int) error {
	if in.eng == nil {
		return fmt.Errorf("injector not attached to an engine")
	}
	switch ev.Kind {
	case Crash:
		in.eng.SetDown(ev.Node, true)
		if in.cfg.OnDown != nil {
			in.cfg.OnDown(t, ev.Node)
		}
	case Recover:
		in.restart(ev.Node, t)
	case Leave:
		if err := in.cfg.Dual.PatchNode(ev.Node, nil, in.cfg.Index, in.cfg.Policy); err != nil {
			return err
		}
		in.eng.SetDown(ev.Node, true)
		if in.cfg.OnDown != nil {
			in.cfg.OnDown(t, ev.Node)
		}
		return in.resync()
	case Join:
		p := in.pos[ev.Node]
		if err := in.cfg.Dual.PatchNode(ev.Node, &p, in.cfg.Index, in.cfg.Policy); err != nil {
			return err
		}
		if err := in.resync(); err != nil {
			return err
		}
		in.restart(ev.Node, t)
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return nil
}

// restart installs a fresh process at u and brings its radio up.
func (in *Injector) restart(u, t int) {
	p := in.cfg.Restart(u)
	in.eng.ReplaceProc(u, p)
	in.eng.SetDown(u, false)
	if in.cfg.OnRestart != nil {
		in.cfg.OnRestart(u, p)
	}
	if in.cfg.OnUp != nil {
		in.cfg.OnUp(t, u)
	}
}

// resync re-reads the patched topology into every consumer: the engine's
// flattened CSR views, the fade scheduler's edge mask, and whatever the
// OnTopology callback re-binds.
func (in *Injector) resync() error {
	in.eng.RefreshTopology()
	if in.cfg.Fade != nil {
		in.cfg.Fade.Rebind()
	}
	if in.cfg.OnTopology != nil {
		return in.cfg.OnTopology()
	}
	return nil
}

var _ sim.Environment = (*Injector)(nil)
