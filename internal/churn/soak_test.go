package churn

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// soakFingerprint is the golden execution fingerprint of the soak run:
// aggregate counters plus a positional checksum of every trace event, the
// same shape core's TestGoldenExecution pins for the churn-free engine.
type soakFingerprint struct {
	Rounds        int
	Events        int
	Transmissions int
	Deliveries    int
	Collisions    int
	Checksum      uint64
}

// fingerprint reduces a trace to its soak fingerprint.
func fingerprint(tr *sim.Trace) soakFingerprint {
	var checksum uint64
	i := 0
	for ev := range tr.Events() {
		checksum = checksum*1099511628211 ^
			uint64(ev.Round)<<32 ^ uint64(ev.Node)<<16 ^ uint64(ev.Kind)<<8 ^
			uint64(int64(ev.From)) ^ uint64(i)
		i++
	}
	return soakFingerprint{
		Rounds:        tr.RoundsRun,
		Events:        tr.Len(),
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
		Checksum:      checksum,
	}
}

// soakWant pins the soak execution. Reproducibility under churn is the
// whole point of the deterministic fault layer: a fixed (topology, plan,
// seed) must replay forever, on every driver and worker count. If an
// intentional change to the RNG streams, the patch order or the engine
// alters this, update the pinned values and call it out in the change
// description.
var soakWant = soakFingerprint{
	Rounds:        10000,
	Events:        274356,
	Transmissions: 226382,
	Deliveries:    274356,
	Collisions:    722368,
	Checksum:      1245244758641624811,
}

// soakPlan compiles the soak's fault schedule: 10⁴ rounds of memoryless
// crash/recover and leave/join churn over 150 nodes, three nodes starting
// outside the network, plus two region-fade epochs.
func soakPlan(t testing.TB, d *dualgraph.Dual) *Plan {
	t.Helper()
	plan, err := Poisson(PoissonConfig{
		N: d.N(), Rounds: 10_000, Seed: 17,
		CrashRate: 0.001, MeanDowntime: 60,
		LeaveRate: 0.0002, MeanAbsence: 150,
		InitialAbsent: []int{5, 50, 95},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan.Fades = []Fade{
		{Start: 2_000, End: 2_500, Regions: []geo.RegionID{
			geo.RegionOf(d.Emb[10]), geo.RegionOf(d.Emb[70])}},
		{Start: 6_000, End: 6_800, Regions: []geo.RegionID{
			geo.RegionOf(d.Emb[30])}},
	}
	if err := plan.Validate(d.N()); err != nil {
		t.Fatal(err)
	}
	return plan
}

// soakRun executes the soak configuration once on the given driver. Every
// run rebuilds the topology from scratch: patches mutate the dual in
// place, so runs must not share one.
func soakRun(t testing.TB, driver sim.Driver, workers int) soakFingerprint {
	t.Helper()
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	plan := soakPlan(t, d)
	procs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = &relayProc{base: 0.08}
	}
	fade := NewFadeScheduler(sched.NewRandom(0.5, 3), d, plan.Fades)
	inj, err := NewInjector(InjectorConfig{
		Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
		Policy: dualgraph.GreyUnreliable,
		Restart: func(u int) sim.Process {
			procs[u] = &relayProc{base: 0.08}
			return procs[u]
		},
		Fade: fade,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Detach(); err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Sched: fade, Env: inj, Seed: 8,
		Driver: driver, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inj.Attach(eng)
	eng.Run(10_000)
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("dual graph invalid after 10k churned rounds: %v", err)
	}
	return fingerprint(eng.Trace())
}

// TestChurnSoak is the CI soak: 10⁴ rounds of Poisson churn — crashes,
// recoveries, leaves, joins and region fades all active — must reproduce
// the pinned golden fingerprint on the sequential driver and on the worker
// pool at 1 and 4 workers. Run under -race this also exercises the
// patch/refresh paths against the parallel scatter and sharded resolver.
func TestChurnSoak(t *testing.T) {
	seq := soakRun(t, sim.DriverSequential, 0)
	if seq != soakWant {
		t.Errorf("sequential soak fingerprint changed:\n got  %+v\n want %+v\n"+
			"(if this change is intentional, update soakWant and explain why)", seq, soakWant)
	}
	for _, workers := range []int{1, 4} {
		if got := soakRun(t, sim.DriverWorkerPool, workers); got != seq {
			t.Errorf("worker-pool(%d) soak diverged from sequential:\n got  %+v\n want %+v",
				workers, got, seq)
		}
	}
}

// soakRunMonitored executes the identical soak configuration with the
// online invariant monitor riding along (lbspec.Monitor as the injector's
// inner environment, lifecycle hooks wired). The workload's relayProc is
// deliberately not spec-conformant (it emits EvHear with a zero MsgID and
// never broadcasts), so the monitor is expected to flag observations — what
// this soak pins is that observing changes nothing: the fingerprint must be
// byte-identical to the unmonitored run.
func soakRunMonitored(t testing.TB, driver sim.Driver, workers int) (soakFingerprint, int) {
	t.Helper()
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	plan := soakPlan(t, d)
	procs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = &relayProc{base: 0.08}
	}
	tr := &sim.Trace{}
	mon, err := lbspec.NewMonitor(lbspec.MonitorConfig{
		Dual: d, Trace: tr, TAck: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	fade := NewFadeScheduler(sched.NewRandom(0.5, 3), d, plan.Fades)
	inj, err := NewInjector(InjectorConfig{
		Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
		Policy: dualgraph.GreyUnreliable,
		Restart: func(u int) sim.Process {
			procs[u] = &relayProc{base: 0.08}
			return procs[u]
		},
		Fade:       fade,
		Inner:      mon,
		OnTopology: mon.TopologyPatched,
		OnDown:     mon.NodeDown,
		OnUp:       mon.NodeRestarted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Detach(); err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Sched: fade, Env: inj, Seed: 8,
		Driver: driver, Workers: workers, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inj.Attach(eng)
	eng.Run(10_000)
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	return fingerprint(eng.Trace()), mon.TotalViolations()
}

// TestChurnSoakMonitored is the monitored soak: the exact soak execution
// with lbspec.Monitor attached. The golden fingerprint must hold unchanged
// (the monitor is a pure observer), the monitor must actually observe the
// workload (relayProc's zero-MsgID hears are flagged), and its verdict must
// be identical across drivers.
func TestChurnSoakMonitored(t *testing.T) {
	seq, seqViol := soakRunMonitored(t, sim.DriverSequential, 0)
	if seq != soakWant {
		t.Errorf("monitored soak perturbed the execution:\n got  %+v\n want %+v", seq, soakWant)
	}
	if seqViol == 0 {
		t.Error("monitor observed nothing: relayProc's non-conformant hears should be flagged")
	}
	pool, poolViol := soakRunMonitored(t, sim.DriverWorkerPool, 4)
	if pool != seq {
		t.Errorf("monitored worker-pool soak diverged:\n got  %+v\n want %+v", pool, seq)
	}
	if poolViol != seqViol {
		t.Errorf("monitor verdict is driver-dependent: sequential %d, pool %d", seqViol, poolViol)
	}
}
