// Package chaos is the randomized robustness harness: it derives a complete
// stress configuration — topology, reception model, adversary scheduler,
// churn plan, fade epochs, traffic — from one master seed, runs it with the
// online invariant monitor riding along (lbspec.Monitor), and when a run
// violates an invariant, delta-debugs the scenario down to a small
// counterexample that replays deterministically from its JSON form
// (`lbsim -exp chaos -repro repro.json`).
//
// A Scenario is the unit of reproduction: every field is either copied into
// the document or derived from Seed by pure computation, so "seed 17 at
// n=48" names one exact execution on every machine and every driver.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lbcast/internal/churn"
)

// SchemaV1 identifies the scenario/repro document layout.
const SchemaV1 = "lbcast-chaos/v1"

// Reception models.
const (
	ModelDualgraph = "dualgraph"
	ModelSINR      = "sinr"
)

// Link schedulers for the dual-graph model.
const (
	SchedRandom    = "random"
	SchedPeriodic  = "periodic"
	SchedAntiDecay = "antidecay"
	SchedAdaptive  = "adaptive"
)

// Fault kinds for seeded (intentionally injected) violations. Faults are
// applied at the observation layer — the monitor's view of the trace — so
// the execution itself is untouched; they exist to prove the
// detect-shrink-replay loop works end to end.
const (
	// FaultDropAck suppresses every EvAck of Node from the monitor's view:
	// the span never completes and the timely-ack deadline fires.
	FaultDropAck = "drop-ack"
	// FaultPhantomRecv injects, at Round, a reception at Node of Node's own
	// latest broadcast. A node is never its own G′ neighbor, so validity
	// fires the moment the phantom is observed.
	FaultPhantomRecv = "phantom-recv"
)

// FaultSpec is a seeded observation-layer fault.
type FaultSpec struct {
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
	Round int    `json:"round,omitempty"`
}

// Scenario is one fully-determined stress configuration. The zero value is
// invalid; build one with Generate or decode a repro document.
type Scenario struct {
	// Schema is SchemaV1.
	Schema string `json:"schema"`
	// Seed derives the topology, schedulers, and engine randomness.
	Seed uint64 `json:"seed"`
	// N is the node count of the constant-density geometric topology.
	N int `json:"n"`
	// Phases is the run length in protocol phases (rounds = Phases ×
	// PhaseLen, which the runner derives from the topology).
	Phases int `json:"phases"`
	// Eps is the protocol error bound ε₁.
	Eps float64 `json:"eps"`
	// Model selects the physical layer: ModelDualgraph or ModelSINR.
	Model string `json:"model"`
	// Sched names the link scheduler (dual-graph model only).
	Sched string `json:"sched,omitempty"`
	// SchedP is the inclusion probability for SchedRandom.
	SchedP float64 `json:"sched_p,omitempty"`
	// AdaptTarget is the starved node for SchedAdaptive.
	AdaptTarget int `json:"adapt_target,omitempty"`
	// Senders is the saturating-sender count.
	Senders int `json:"senders"`
	// Plan is the expanded churn schedule; nil or empty means no churn.
	Plan *churn.Plan `json:"plan,omitempty"`
	// Fault is the seeded observation fault, if any.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// Validate checks the scenario's internal consistency.
func (sc *Scenario) Validate() error {
	if sc.Schema != SchemaV1 {
		return fmt.Errorf("chaos: schema %q, want %q", sc.Schema, SchemaV1)
	}
	if sc.N < 2 {
		return fmt.Errorf("chaos: n = %d must be ≥ 2", sc.N)
	}
	if sc.Phases < 1 {
		return fmt.Errorf("chaos: phases = %d must be ≥ 1", sc.Phases)
	}
	if !(sc.Eps > 0 && sc.Eps <= 0.5) {
		return fmt.Errorf("chaos: eps = %v outside (0, ½]", sc.Eps)
	}
	if sc.Senders < 1 || sc.Senders > sc.N {
		return fmt.Errorf("chaos: senders = %d outside [1, %d]", sc.Senders, sc.N)
	}
	switch sc.Model {
	case ModelDualgraph:
		switch sc.Sched {
		case SchedRandom:
			if !(sc.SchedP > 0 && sc.SchedP < 1) {
				return fmt.Errorf("chaos: sched_p = %v outside (0,1)", sc.SchedP)
			}
		case SchedPeriodic, SchedAntiDecay:
		case SchedAdaptive:
			if sc.AdaptTarget < 0 || sc.AdaptTarget >= sc.N {
				return fmt.Errorf("chaos: adapt_target = %d outside [0,%d)", sc.AdaptTarget, sc.N)
			}
		default:
			return fmt.Errorf("chaos: unknown sched %q for the dual-graph model", sc.Sched)
		}
	case ModelSINR:
		if sc.Sched != "" {
			return fmt.Errorf("chaos: the SINR model takes no link scheduler (got %q)", sc.Sched)
		}
		if sc.Plan != nil {
			for _, ev := range sc.Plan.Events {
				if ev.Kind == churn.Leave || ev.Kind == churn.Join {
					return fmt.Errorf("chaos: %s events patch the dual graph and are dual-graph-model-only", ev.Kind)
				}
			}
			if len(sc.Plan.Fades) > 0 || len(sc.Plan.InitialAbsent) > 0 {
				return fmt.Errorf("chaos: fades and initial-absent sets are dual-graph-model-only")
			}
		}
	default:
		return fmt.Errorf("chaos: unknown model %q", sc.Model)
	}
	if sc.Plan != nil {
		if err := sc.Plan.Validate(sc.N); err != nil {
			return err
		}
	}
	if f := sc.Fault; f != nil {
		if f.Node < 0 || f.Node >= sc.N {
			return fmt.Errorf("chaos: fault node %d outside [0,%d)", f.Node, sc.N)
		}
		switch f.Kind {
		case FaultDropAck:
			if f.Node >= sc.Senders {
				return fmt.Errorf("chaos: drop-ack node %d is not a sender (senders = %d)", f.Node, sc.Senders)
			}
		case FaultPhantomRecv:
			if f.Round < 1 {
				return fmt.Errorf("chaos: phantom-recv round %d must be ≥ 1", f.Round)
			}
		default:
			return fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
		}
	}
	return nil
}

// WriteJSON renders the scenario as a repro document with stable formatting.
func (sc *Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// WriteFile writes the repro document to path.
func (sc *Scenario) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadScenario decodes and validates a repro document.
func ReadScenario(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("chaos: decoding scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ReadScenarioFile loads a repro document from path.
func ReadScenarioFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadScenario(f)
}
