package chaos

import (
	"fmt"
	"math"

	"lbcast/internal/churn"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/sinr"
	"lbcast/internal/xrand"
)

// GenOptions bounds scenario generation.
type GenOptions struct {
	// MaxN caps the node count (minimum 24; 0 means 64).
	MaxN int
	// Fault seeds an observation-layer fault into the scenario, turning it
	// into a known-violating canary for the detect-shrink-replay loop.
	Fault bool
}

// Generate derives a complete scenario from one master seed. Equal inputs
// produce equal scenarios; everything downstream (topology, schedulers,
// engine randomness) then derives from the scenario's own Seed.
func Generate(master uint64, opt GenOptions) (*Scenario, error) {
	rng := xrand.New(master).Split(0xC4A05)
	maxN := opt.MaxN
	if maxN < 24 {
		maxN = 64
	}
	sc := &Scenario{
		Schema:  SchemaV1,
		Seed:    master,
		N:       24 + rng.Intn(maxN-23),
		Eps:     0.2,
		Senders: 4,
	}
	if sc.Senders > sc.N/4 {
		sc.Senders = max(1, sc.N/4)
	}
	if rng.Coin(0.25) {
		sc.Model = ModelSINR
	} else {
		sc.Model = ModelDualgraph
		switch rng.Intn(4) {
		case 0:
			sc.Sched = SchedRandom
			sc.SchedP = []float64{0.3, 0.5, 0.7}[rng.Intn(3)]
		case 1:
			sc.Sched = SchedPeriodic
		case 2:
			sc.Sched = SchedAntiDecay
		case 3:
			sc.Sched = SchedAdaptive
			sc.AdaptTarget = sc.N - 1 - rng.Intn(sc.N-sc.Senders)
		}
	}

	// The plan horizon and fault windows need the protocol schedule, which
	// is a function of the topology this scenario will build.
	d, p, err := buildTopology(sc)
	if err != nil {
		return nil, fmt.Errorf("chaos: generate seed %d: %w", master, err)
	}

	if opt.Fault {
		if rng.Coin(0.5) {
			// The deadline of a broadcast from the first rounds must expire
			// inside the run for the dropped ack to surface.
			sc.Fault = &FaultSpec{Kind: FaultDropAck, Node: rng.Intn(sc.Senders)}
			sc.Phases = p.Tack + 3
		} else {
			sc.Fault = &FaultSpec{Kind: FaultPhantomRecv, Node: rng.Intn(sc.Senders),
				Round: 2 + rng.Intn(62)}
			sc.Phases = 3
		}
	} else {
		sc.Phases = 4 + rng.Intn(5)
	}

	rounds := sc.Phases * p.PhaseLen()
	leaveRate := 0.125 / float64(rounds)
	if sc.Model == ModelSINR {
		leaveRate = 0 // Leave/Join patch the dual graph; SINR runs take crash/recover only
	}
	plan, err := churn.Poisson(churn.PoissonConfig{
		N: sc.N, Rounds: rounds, Seed: master ^ 0xDA7A,
		CrashRate:    0.5 / float64(rounds),
		MeanDowntime: max(1, p.PhaseLen()/2),
		LeaveRate:    leaveRate,
		MeanAbsence:  p.PhaseLen(),
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: generate seed %d: %w", master, err)
	}
	if sc.Fault != nil {
		// Churn on the fault node could excuse the very span the fault is
		// meant to break; keep the canary deterministic.
		kept := plan.Events[:0]
		for _, ev := range plan.Events {
			if ev.Node != sc.Fault.Node {
				kept = append(kept, ev)
			}
		}
		plan.Events = kept
	}
	if sc.Model == ModelDualgraph && rng.Coin(0.5) {
		u, v := rng.Intn(sc.N), rng.Intn(sc.N)
		plan.Fades = []churn.Fade{{Start: rounds / 4, End: rounds / 2,
			Regions: []geo.RegionID{geo.RegionOf(d.Emb[u]), geo.RegionOf(d.Emb[v])}}}
	}
	if !plan.Empty() {
		sc.Plan = plan
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: generated scenario invalid: %w", err)
	}
	return sc, nil
}

// RunOptions select the execution strategy of one scenario run.
type RunOptions struct {
	// Driver/Workers select the engine driver (DriverSequential default).
	Driver  sim.Driver
	Workers int
	// NoEarlyExit disables stopping at the first violating phase; the full
	// window always runs.
	NoEarlyExit bool
}

// Result is the verdict of one scenario run.
type Result struct {
	// PhaseLen is the derived protocol phase length in rounds.
	PhaseLen int
	// Rounds is how many rounds actually executed (early exit stops at the
	// end of the first violating phase); Planned is Phases × PhaseLen.
	Rounds, Planned int
	// Report is the monitor's Check-shaped report at the end of the run.
	Report *lbspec.Report
	// Violations are the retained violation records; Total counts all of
	// them, past any retention cap.
	Violations []lbspec.Violation
	Total      int
}

// buildTopology constructs the scenario's constant-density geometric dual.
// Under SINR the grey-zone reach is widened to cover the isolation
// reception range (≈1.77 at unit power), so every physically decodable
// reception is a G′ edge and the monitor's validity check stays sound.
func buildTopology(sc *Scenario) (*dualgraph.Dual, core.Params, error) {
	side := math.Max(4, math.Sqrt(float64(sc.N)/4))
	r := 1.5
	if sc.Model == ModelSINR {
		r = 1.8
	}
	d, err := dualgraph.RandomGeometric(sc.N, side, side, r, dualgraph.GreyUnreliable, xrand.New(sc.Seed))
	if err != nil {
		return nil, core.Params{}, err
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), d.R, sc.Eps)
	if err != nil {
		return nil, core.Params{}, err
	}
	return d, p, nil
}

// faultView sits between the engine trace and the monitor's trace, copying
// each round's new events while applying the scenario's FaultSpec. The
// execution reads only the engine trace, so the fault perturbs observation,
// never behavior.
type faultView struct {
	spec      FaultSpec
	src, dst  *sim.Trace
	inner     sim.Environment
	copied    int
	lastBcast sim.MsgID
	haveBcast bool
	injected  bool
}

func (f *faultView) BeforeRound(t int) { f.inner.BeforeRound(t) }

func (f *faultView) AfterRound(t int) {
	for ; f.copied < f.src.Len(); f.copied++ {
		ev := f.src.At(f.copied)
		if f.spec.Kind == FaultDropAck && ev.Kind == sim.EvAck && ev.Node == f.spec.Node {
			continue
		}
		if ev.Kind == sim.EvBcast && ev.Node == f.spec.Node {
			f.lastBcast, f.haveBcast = ev.MsgID, true
		}
		f.dst.Record(ev)
	}
	if f.spec.Kind == FaultPhantomRecv && !f.injected && t >= f.spec.Round {
		f.injected = true
		id := sim.NewMsgID(f.spec.Node, 1<<20)
		if f.haveBcast {
			id = f.lastBcast
		}
		// A node is never its own G′ neighbor: validity fires immediately.
		f.dst.Record(sim.Event{Round: t, Node: f.spec.Node, From: f.spec.Node,
			Kind: sim.EvRecv, MsgID: id})
	}
	f.dst.RoundsRun = f.src.RoundsRun
	f.inner.AfterRound(t)
}

// Run executes one scenario with the online monitor attached and returns
// its verdict. The same scenario produces the same verdict on every driver
// (the engine's cross-driver determinism carries over to the monitor).
func Run(sc *Scenario, opt RunOptions) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	d, p, err := buildTopology(sc)
	if err != nil {
		return nil, err
	}
	rounds := sc.Phases * p.PhaseLen()

	svcs := make([]core.Service, sc.N)
	procs := make([]sim.Process, sc.N)
	for u := range svcs {
		svcs[u] = core.NewLBAlg(p)
		procs[u] = svcs[u]
	}
	senders := make([]int, sc.Senders)
	for i := range senders {
		senders[i] = i
	}
	env := core.NewSaturatingEnv(svcs, senders)

	engTr := &sim.Trace{}
	monTr := engTr
	if sc.Fault != nil {
		monTr = &sim.Trace{}
	}
	mon, err := lbspec.NewMonitor(lbspec.MonitorConfig{
		Dual: d, Trace: monTr, TAck: p.TAckBound(), TProg: p.TProgBound(), Inner: env,
	})
	if err != nil {
		return nil, err
	}
	var simEnv sim.Environment = mon
	if sc.Fault != nil {
		simEnv = &faultView{spec: *sc.Fault, src: engTr, dst: monTr, inner: mon}
	}

	var (
		linkSched sim.LinkScheduler
		adaptive  *sched.Adaptive
	)
	if sc.Model == ModelDualgraph {
		switch sc.Sched {
		case SchedRandom:
			linkSched = sched.NewRandom(sc.SchedP, sc.Seed)
		case SchedPeriodic:
			linkSched = sched.Periodic{Period: 8, OnRounds: 3}
		case SchedAntiDecay:
			linkSched = sched.AntiDecay{CycleLen: p.LogDelta}
		case SchedAdaptive:
			adaptive, err = sched.NewAdaptive(d, sc.AdaptTarget)
			if err != nil {
				return nil, err
			}
			linkSched = adaptive
		}
	}

	var inj *churn.Injector
	if sc.Plan != nil && !sc.Plan.Empty() {
		var fade *churn.FadeScheduler
		if len(sc.Plan.Fades) > 0 {
			fade = churn.NewFadeScheduler(linkSched, d, sc.Plan.Fades)
			linkSched = fade
		}
		inj, err = churn.NewInjector(churn.InjectorConfig{
			Plan: sc.Plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
			Policy: dualgraph.GreyUnreliable,
			Restart: func(u int) sim.Process {
				svcs[u] = core.NewLBAlg(p)
				return svcs[u]
			},
			Inner: simEnv,
			Fade:  fade,
			OnTopology: func() error {
				if adaptive != nil {
					if err := adaptive.Rebind(d); err != nil {
						return err
					}
				}
				return mon.TopologyPatched()
			},
			OnRestart: func(u int, _ sim.Process) { env.Rearm(u) },
			OnDown:    mon.NodeDown,
			OnUp:      mon.NodeRestarted,
		})
		if err != nil {
			return nil, err
		}
		if err := inj.Detach(); err != nil {
			return nil, err
		}
		simEnv = inj
	}

	cfg := sim.Config{Dual: d, Procs: procs, Env: simEnv,
		Seed: sc.Seed + 101, Driver: opt.Driver, Workers: opt.Workers, Trace: engTr}
	if sc.Model == ModelSINR {
		model, err := sinr.NewModel(d.Emb, sinr.UniformPower(1), sinr.DefaultParams())
		if err != nil {
			return nil, err
		}
		cfg.Reception = model
	} else {
		cfg.Sched = linkSched
	}
	engine, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	defer engine.Close()
	if inj != nil {
		inj.Attach(engine)
	}

	// Segmented run: one phase at a time, stopping at the end of the first
	// violating phase — shrink replays pay only for the prefix that
	// matters.
	for engTr.RoundsRun < rounds {
		engine.Run(min(p.PhaseLen(), rounds-engTr.RoundsRun))
		if inj != nil {
			if err := inj.Err(); err != nil {
				return nil, err
			}
		}
		if !opt.NoEarlyExit && mon.TotalViolations() > 0 {
			break
		}
	}
	return &Result{
		PhaseLen:   p.PhaseLen(),
		Rounds:     engTr.RoundsRun,
		Planned:    rounds,
		Report:     mon.Report(),
		Violations: mon.Violations(),
		Total:      mon.TotalViolations(),
	}, nil
}

// Search runs trials scenarios derived from consecutive master seeds and
// returns the first violating one (with its result), or nil if every trial
// came back clean. Faultless generation means a hit is a real invariant
// break — the bounded CI search is a regression net, not an expectation.
func Search(start uint64, trials int, gen GenOptions, run RunOptions) (*Scenario, *Result, int, error) {
	for i := 0; i < trials; i++ {
		sc, err := Generate(start+uint64(i), gen)
		if err != nil {
			return nil, nil, i, err
		}
		res, err := Run(sc, run)
		if err != nil {
			return nil, nil, i, err
		}
		if res.Total > 0 {
			return sc, res, i + 1, nil
		}
	}
	return nil, nil, trials, nil
}
