package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"lbcast/internal/churn"
	"lbcast/internal/sim"
)

// TestGenerateDeterministic pins that a master seed names one scenario.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		a, err := Generate(seed, GenOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, GenOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
	}
}

// TestScenarioRoundTrip pins the lbcast-chaos/v1 document: a scenario
// survives encode/decode exactly, and the decoder rejects corrupt input.
func TestScenarioRoundTrip(t *testing.T) {
	sc, err := Generate(5, GenOptions{Fault: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
	if _, err := ReadScenario(bytes.NewReader([]byte(`{"schema":"wrong/v9"}`))); err == nil {
		t.Fatal("decoder accepted a foreign schema")
	}
	if _, err := ReadScenario(bytes.NewReader([]byte(`{"schema":"lbcast-chaos/v1","bogus":1}`))); err == nil {
		t.Fatal("decoder accepted unknown fields")
	}
}

// TestCleanScenariosFindNothing is the regression net the CI search relies
// on: faultless scenarios across the generator's whole surface (both
// models, all schedulers, churn, fades) run violation-free.
func TestCleanScenariosFindNothing(t *testing.T) {
	sc, res, tried, err := Search(100, 6, GenOptions{MaxN: 48}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sc != nil {
		t.Fatalf("trial %d (seed %d) violated: %v", tried, sc.Seed, res.Violations[0])
	}
}

// TestSeededFaultsAreDetected pins that both observation-fault kinds
// surface as the intended invariant class.
func TestSeededFaultsAreDetected(t *testing.T) {
	wantByKind := map[string]string{
		FaultDropAck:     "timely-ack",
		FaultPhantomRecv: "validity",
	}
	found := map[string]bool{}
	for seed := uint64(200); seed < 212 && len(found) < len(wantByKind); seed++ {
		sc, err := Generate(seed, GenOptions{MaxN: 40, Fault: true})
		if err != nil {
			t.Fatal(err)
		}
		if found[sc.Fault.Kind] {
			continue
		}
		res, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Total == 0 {
			t.Fatalf("seed %d: seeded %s fault went undetected", seed, sc.Fault.Kind)
		}
		want := wantByKind[sc.Fault.Kind]
		if got := res.Violations[0].Invariant; got != want {
			t.Fatalf("seed %d: %s fault surfaced as %q, want %q", seed, sc.Fault.Kind, got, want)
		}
		found[sc.Fault.Kind] = true
	}
	for kind := range wantByKind {
		if !found[kind] {
			t.Errorf("generator never produced a %s fault in the seed range", kind)
		}
	}
}

// TestShrinkMinimizesSeededViolation is the acceptance criterion: a seeded
// violation in a full-size scenario shrinks to ≤ 16 nodes and ≤ 32 churn
// events, and the minimized repro document reproduces the same invariant
// violation deterministically on both drivers.
func TestShrinkMinimizesSeededViolation(t *testing.T) {
	var sc *Scenario
	for seed := uint64(300); ; seed++ {
		if seed == 340 {
			t.Fatal("no drop-ack scenario with a large churn plan in the seed range")
		}
		cand, err := Generate(seed, GenOptions{MaxN: 64, Fault: true})
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance criterion wants a demonstrable reduction: start
		// from a scenario that is actually big.
		if cand.Fault.Kind == FaultDropAck && cand.N >= 40 && len(planEvents(cand)) > 32 {
			sc = cand
			break
		}
	}

	minimized, stats, err := Shrink(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shrunk n %d→%d, events %d→%d, phases %d→%d in %d replays [%s]",
		stats.FromN, stats.ToN, stats.FromEvents, stats.ToEvents,
		stats.FromPhases, stats.ToPhases, stats.Replays, stats.Invariant)
	if minimized.N > 16 {
		t.Errorf("minimized scenario keeps %d nodes, want ≤ 16", minimized.N)
	}
	if got := len(planEvents(minimized)); got > 32 {
		t.Errorf("minimized scenario keeps %d churn events, want ≤ 32", got)
	}

	// The emitted repro document reproduces the violation deterministically
	// across drivers.
	var buf bytes.Buffer
	if err := minimized.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	repro, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := Run(repro, RunOptions{Driver: sim.DriverSequential})
	if err != nil {
		t.Fatal(err)
	}
	poolRes, err := Run(repro, RunOptions{Driver: sim.DriverWorkerPool, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{seqRes, poolRes} {
		if res.Total == 0 || res.Violations[0].Invariant != stats.Invariant {
			t.Fatalf("repro did not reproduce %q: total=%d violations=%v",
				stats.Invariant, res.Total, res.Violations)
		}
	}
	if seqRes.Total != poolRes.Total || !reflect.DeepEqual(seqRes.Violations, poolRes.Violations) {
		t.Errorf("drivers disagree on the repro:\nsequential: %v\npool:       %v",
			seqRes.Violations, poolRes.Violations)
	}
}

// TestWithNFiltersPlan pins the node-ladder candidate construction.
func TestWithNFiltersPlan(t *testing.T) {
	sc := &Scenario{
		Schema: SchemaV1, Seed: 1, N: 40, Phases: 2, Eps: 0.2,
		Model: ModelDualgraph, Sched: SchedAdaptive, AdaptTarget: 39, Senders: 4,
		Plan: &churn.Plan{Events: []churn.Event{
			{Round: 1, Kind: churn.Crash, Node: 3},
			{Round: 2, Kind: churn.Crash, Node: 30},
			{Round: 5, Kind: churn.Recover, Node: 3},
			{Round: 6, Kind: churn.Recover, Node: 30},
		}},
	}
	cand := withN(sc, 16)
	if cand.AdaptTarget != 15 {
		t.Errorf("adaptive target not clamped: %d", cand.AdaptTarget)
	}
	if got := len(cand.Plan.Events); got != 2 {
		t.Errorf("out-of-range events survived: %v", cand.Plan.Events)
	}
	if err := cand.Validate(); err != nil {
		t.Errorf("candidate invalid: %v", err)
	}
	if len(sc.Plan.Events) != 4 {
		t.Error("withN mutated the original scenario")
	}
}

// TestDDMin pins the minimizer on a synthetic predicate: only one unit
// matters, and ddmin must isolate it.
func TestDDMin(t *testing.T) {
	units := make([]unit, 20)
	for i := range units {
		units[i] = unit{{Round: i + 1, Kind: churn.Crash, Node: i}}
	}
	needle := units[13][0]
	got := ddmin(units, func(sub []unit) bool {
		for _, u := range sub {
			if u[0] == needle {
				return true
			}
		}
		return false
	})
	if len(got) != 1 || got[0][0] != needle {
		t.Fatalf("ddmin kept %v, want exactly the needle unit", got)
	}
	if all := ddmin(units, func([]unit) bool { return true }); len(all) != 0 {
		t.Fatalf("ddmin kept %d units for an always-true predicate", len(all))
	}
}
