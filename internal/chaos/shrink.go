package chaos

import (
	"fmt"
	"sort"

	"lbcast/internal/churn"
)

// ShrinkStats summarizes one shrink.
type ShrinkStats struct {
	// Invariant is the violation class the shrink preserved (the first
	// violation of the original run).
	Invariant string `json:"invariant"`
	// Replays counts scenario executions the search spent.
	Replays int `json:"replays"`
	// FromN/FromEvents/FromPhases and ToN/ToEvents/ToPhases summarize the
	// reduction.
	FromN      int `json:"from_n"`
	FromEvents int `json:"from_events"`
	FromPhases int `json:"from_phases"`
	ToN        int `json:"to_n"`
	ToEvents   int `json:"to_events"`
	ToPhases   int `json:"to_phases"`
}

// clone deep-copies a scenario so candidate edits never alias the original.
func clone(sc *Scenario) *Scenario {
	out := *sc
	if sc.Fault != nil {
		f := *sc.Fault
		out.Fault = &f
	}
	if sc.Plan != nil {
		p := &churn.Plan{
			Events:        append([]churn.Event(nil), sc.Plan.Events...),
			Fades:         append([]churn.Fade(nil), sc.Plan.Fades...),
			InitialAbsent: append([]int(nil), sc.Plan.InitialAbsent...),
		}
		out.Plan = p
	}
	return &out
}

// planEvents returns the scenario's lifecycle events (nil-safe).
func planEvents(sc *Scenario) []churn.Event {
	if sc.Plan == nil {
		return nil
	}
	return sc.Plan.Events
}

// withEvents replaces the scenario's lifecycle schedule, dropping the Plan
// entirely when nothing remains.
func withEvents(sc *Scenario, evs []churn.Event) *Scenario {
	out := clone(sc)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Round != evs[j].Round {
			return evs[i].Round < evs[j].Round
		}
		return evs[i].Node < evs[j].Node
	})
	if out.Plan == nil {
		out.Plan = &churn.Plan{}
	}
	out.Plan.Events = evs
	if out.Plan.Empty() {
		out.Plan = nil
	}
	return out
}

// withN rescales the scenario to n nodes: the topology regenerates from the
// same seed, out-of-range plan events and absent nodes drop, and the sender
// set and adversary target clamp.
func withN(sc *Scenario, n int) *Scenario {
	out := clone(sc)
	out.N = n
	if out.Senders > n {
		out.Senders = n
	}
	if out.Sched == SchedAdaptive && out.AdaptTarget >= n {
		out.AdaptTarget = n - 1
	}
	if out.Plan != nil {
		kept := out.Plan.Events[:0]
		for _, ev := range out.Plan.Events {
			if ev.Node < n {
				kept = append(kept, ev)
			}
		}
		out.Plan.Events = kept
		absent := out.Plan.InitialAbsent[:0]
		for _, u := range out.Plan.InitialAbsent {
			if u < n {
				absent = append(absent, u)
			}
		}
		out.Plan.InitialAbsent = absent
		if out.Plan.Empty() {
			out.Plan = nil
		}
	}
	return out
}

// unit is an atomic shrink step of the churn schedule: a down event paired
// with the up event that ends its outage (or a lone unpaired event).
// Removing a whole unit keeps the plan well-formed.
type unit []churn.Event

// planUnits pairs each Crash/Leave with the next Recover/Join of the same
// node, in schedule order.
func planUnits(evs []churn.Event) []unit {
	open := map[int]int{} // node → index of the open unit
	var units []unit
	for _, ev := range evs {
		switch ev.Kind {
		case churn.Crash, churn.Leave:
			units = append(units, unit{ev})
			open[ev.Node] = len(units) - 1
		case churn.Recover, churn.Join:
			if i, ok := open[ev.Node]; ok {
				units[i] = append(units[i], ev)
				delete(open, ev.Node)
			} else {
				units = append(units, unit{ev})
			}
		}
	}
	return units
}

func flatten(units []unit) []churn.Event {
	var evs []churn.Event
	for _, u := range units {
		evs = append(evs, u...)
	}
	return evs
}

// ddmin is Zeller's delta-debugging minimization over shrink units: find a
// small subset for which test still holds, assuming test(items) does.
func ddmin(items []unit, test func([]unit) bool) []unit {
	if len(items) == 0 || test(nil) {
		return nil
	}
	cur := items
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for i := 0; i < len(cur) && !reduced; i += chunk {
			sub := cur[i:min(i+chunk, len(cur))]
			if len(sub) < len(cur) && test(sub) {
				cur, n, reduced = sub, 2, true
			}
		}
		for i := 0; i < len(cur) && !reduced; i += chunk {
			comp := append(append([]unit(nil), cur[:i]...), cur[min(i+chunk, len(cur)):]...)
			if len(comp) < len(cur) && test(comp) {
				cur, n, reduced = comp, max(n-1, 2), true
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	return cur
}

// Shrink minimizes a violating scenario while preserving its violation
// class (the invariant of the original run's first violation): it drops
// fade epochs, descends the node-count ladder, delta-debugs the churn
// schedule, and truncates the round window to the first violating phase.
// Every candidate is re-executed; the returned scenario reproduces the
// violation by construction.
func Shrink(sc *Scenario, opt RunOptions) (*Scenario, *ShrinkStats, error) {
	base, err := Run(sc, opt)
	if err != nil {
		return nil, nil, err
	}
	if base.Total == 0 {
		return nil, nil, fmt.Errorf("chaos: scenario does not violate; nothing to shrink")
	}
	inv := base.Violations[0].Invariant
	stats := &ShrinkStats{
		Invariant: inv,
		FromN:     sc.N, FromEvents: len(planEvents(sc)), FromPhases: sc.Phases,
	}

	last := base
	reproduces := func(cand *Scenario) *Result {
		if cand.Validate() != nil {
			return nil
		}
		stats.Replays++
		res, err := Run(cand, opt)
		if err != nil {
			return nil
		}
		for _, v := range res.Violations {
			if v.Invariant == inv {
				return res
			}
		}
		return nil
	}

	cur := clone(sc)

	// Fades first: they are the coarsest knob and removing them simplifies
	// every later candidate.
	if cur.Plan != nil && len(cur.Plan.Fades) > 0 {
		cand := clone(cur)
		cand.Plan.Fades = nil
		if cand.Plan.Empty() {
			cand.Plan = nil
		}
		if res := reproduces(cand); res != nil {
			cur, last = cand, res
		}
	}

	// Node ladder, smallest first. Candidates whose regenerated topology
	// fails to build (disconnected, degenerate Δ) simply don't reproduce.
	for _, n := range []int{8, 12, 16, 24, 32, 48} {
		if n >= cur.N {
			break
		}
		cand := withN(cur, n)
		if res := reproduces(cand); res != nil {
			cur, last = cand, res
			break
		}
	}

	// Delta-debug the churn schedule in outage units.
	if units := planUnits(planEvents(cur)); len(units) > 0 {
		var lastHit *Result
		kept := ddmin(units, func(sub []unit) bool {
			res := reproduces(withEvents(cur, flatten(sub)))
			if res != nil {
				lastHit = res
			}
			return res != nil
		})
		cur = withEvents(cur, flatten(kept))
		if lastHit != nil {
			last = lastHit
		}
	}

	// Truncate the window to the first violating phase.
	if first := firstOf(last, inv); first > 0 {
		needed := (first + last.PhaseLen - 1) / last.PhaseLen
		if needed < cur.Phases {
			cand := clone(cur)
			cand.Phases = needed
			if res := reproduces(cand); res != nil {
				cur, last = cand, res
			}
		}
	}

	stats.ToN, stats.ToEvents, stats.ToPhases = cur.N, len(planEvents(cur)), cur.Phases
	return cur, stats, nil
}

// firstOf returns the round of the earliest retained violation of the given
// invariant, or 0.
func firstOf(res *Result, inv string) int {
	first := 0
	for _, v := range res.Violations {
		if v.Invariant == inv && (first == 0 || v.Round < first) {
			first = v.Round
		}
	}
	return first
}
