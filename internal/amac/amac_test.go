package amac

import (
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// buildFloodNet assembles LBAlg processes with a Flood controller.
func buildFloodNet(t testing.TB, d *dualgraph.Dual, eps float64, seed uint64, s sim.LinkScheduler) (*sim.Engine, *Flood, core.Params) {
	t.Helper()
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), max(1, d.R), eps)
	if err != nil {
		t.Fatal(err)
	}
	layers := make([]Layer, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false // floods only need recv events
		layers[u] = NewAdapter(alg, FromLBParams(p))
		simProcs[u] = alg
	}
	flood := NewFlood(layers)
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Env: flood, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e, flood, p
}

func TestAdapterDelegates(t *testing.T) {
	p, err := core.DeriveParams(2, 2, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	alg := core.NewLBAlg(p)
	alg.Init(&sim.NodeEnv{ID: 0, Delta: 2, DeltaPrime: 2, R: 1, Rng: xrand.New(1), Rec: discard{}})
	a := NewAdapter(alg, FromLBParams(p))

	if a.Busy() {
		t.Error("fresh adapter busy")
	}
	if _, err := a.Bcast("x"); err != nil {
		t.Fatal(err)
	}
	if !a.Busy() {
		t.Error("adapter not busy after bcast")
	}
	g := a.Guarantees()
	if g.FAck != p.TAckBound() || g.FProg != p.TProgBound() || g.Eps != p.Eps1 {
		t.Errorf("guarantees = %+v", g)
	}
	if g.FAck < g.FProg {
		t.Error("f_ack below f_prog")
	}
}

type discard struct{}

func (discard) Record(sim.Event) {}

func TestFloodSingleNode(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, flood, p := buildFloodNet(t, d, 0.25, 1, nil)
	key, err := flood.Start(0, "hello")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(p.TAckBound() + 1)
	if !flood.Delivered(0, key) {
		t.Error("origin does not hold its own flood")
	}
	if _, done := flood.Complete(key); !done {
		t.Error("singleton flood incomplete")
	}
}

func TestFloodStartValidation(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, flood, _ := buildFloodNet(t, d, 0.25, 1, nil)
	if _, err := flood.Start(-1, nil); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := flood.Start(5, nil); err == nil {
		t.Error("out-of-range origin accepted")
	}
}

func TestFloodLine(t *testing.T) {
	// Multi-hop: a flood from one end of a 6-node line must cover all
	// nodes, demonstrating global broadcast composed over the layer.
	rng := xrand.New(2)
	d, err := dualgraph.Line(6, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, flood, p := buildFloodNet(t, d, 0.25, 3, sched.Random{P: 0.5, Seed: 4})
	key, err := flood.Start(0, "wave")
	if err != nil {
		t.Fatal(err)
	}
	budget := 6 * 4 * p.PhaseLen()
	for r := 0; r < budget; r++ {
		e.Step()
		if _, done := flood.Complete(key); done {
			break
		}
	}
	round, done := flood.Complete(key)
	if !done {
		t.Fatalf("flood covered %d/%d nodes within %d rounds", flood.Coverage(key), d.N(), budget)
	}
	if lat, ok := flood.Latency(key); !ok || lat <= 0 || lat > round {
		t.Errorf("latency = %d, %v (completed at %d)", lat, ok, round)
	}
}

func TestFloodTwoTier(t *testing.T) {
	// Inter-cluster links are all unreliable: the flood can only cross when
	// the scheduler includes them. With a random scheduler it must still
	// complete (the adversary is oblivious, not omnipotent).
	rng := xrand.New(5)
	d, err := dualgraph.TwoTierClusters(3, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, flood, p := buildFloodNet(t, d, 0.25, 6, sched.Random{P: 0.7, Seed: 7})
	key, err := flood.Start(0, "crossing")
	if err != nil {
		t.Fatal(err)
	}
	budget := 12 * 4 * p.PhaseLen()
	for r := 0; r < budget && flood.Coverage(key) < d.N(); r++ {
		e.Step()
	}
	if flood.Coverage(key) != d.N() {
		t.Errorf("flood covered %d/%d across unreliable cluster links", flood.Coverage(key), d.N())
	}
}

func TestFloodBlockedWithoutUnreliableLinks(t *testing.T) {
	// Sanity check of the dual graph semantics: with every unreliable link
	// excluded, a two-tier flood cannot escape the origin cluster.
	rng := xrand.New(8)
	d, err := dualgraph.TwoTierClusters(2, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, flood, p := buildFloodNet(t, d, 0.25, 9, sched.Never{})
	key, err := flood.Start(0, "stuck")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(6 * p.PhaseLen())
	if flood.Coverage(key) > 4 {
		t.Errorf("flood escaped an isolated cluster: coverage %d", flood.Coverage(key))
	}
	if _, done := flood.Complete(key); done {
		t.Error("flood reported complete despite isolation")
	}
}

func TestMultiMessageFlood(t *testing.T) {
	// Two concurrent floods from different origins must both complete and
	// be tracked independently.
	rng := xrand.New(10)
	d, err := dualgraph.Line(5, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, flood, p := buildFloodNet(t, d, 0.25, 11, nil)
	k1, err := flood.Start(0, "left")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := flood.Start(4, "right")
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("flood keys collide")
	}
	budget := 5 * 6 * p.PhaseLen()
	for r := 0; r < budget; r++ {
		e.Step()
		_, d1 := flood.Complete(k1)
		_, d2 := flood.Complete(k2)
		if d1 && d2 {
			return
		}
	}
	t.Fatalf("floods incomplete: %d/%d and %d/%d nodes",
		flood.Coverage(k1), d.N(), flood.Coverage(k2), d.N())
}
