package amac

import (
	"fmt"
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// buildConsensus assembles LBAlg + Consensus over a dual graph.
func buildConsensus(t testing.TB, d *dualgraph.Dual, initial []any, cycles int, s sim.LinkScheduler, seed uint64) (*sim.Engine, *Consensus, core.Params) {
	t.Helper()
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), max(1, d.R), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	layers := make([]Layer, d.N())
	procs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		layers[u] = NewAdapter(alg, FromLBParams(p))
		procs[u] = alg
	}
	cons, err := NewConsensus(layers, initial, cycles)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: s, Env: cons, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e, cons, p
}

func TestConsensusValidation(t *testing.T) {
	if _, err := NewConsensus(make([]Layer, 2), []any{1}, 1); err == nil {
		t.Error("mismatched initial values accepted")
	}
}

func TestConsensusCluster(t *testing.T) {
	rng := xrand.New(1)
	d, err := dualgraph.SingleHopCluster(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]any, d.N())
	for u := range initial {
		initial[u] = fmt.Sprintf("v%d", u)
	}
	e, cons, p := buildConsensus(t, d, initial, 2, sched.Random{P: 0.5, Seed: 2}, 3)
	budget := 3 * 2 * (p.TAckBound() + p.PhaseLen())
	for r := 0; r < budget; r++ {
		e.Step()
		if _, done := cons.Done(); done {
			break
		}
	}
	round, done := cons.Done()
	if !done {
		t.Fatal("consensus did not terminate within budget")
	}
	if round <= 0 {
		t.Errorf("Done round = %d", round)
	}
	value, agree := cons.Agreement()
	if !agree {
		t.Fatal("nodes decided different values")
	}
	// Validity: the decision is someone's initial value; with min-id race
	// on a clique it should be node 0's.
	if value != "v0" {
		t.Errorf("decided %v, want v0 (minimum id's value)", value)
	}
	for u := 0; u < d.N(); u++ {
		v, ok := cons.Decision(u)
		if !ok || v != value {
			t.Errorf("node %d decision = %v, %v", u, v, ok)
		}
	}
}

func TestConsensusAgreementAcrossTrials(t *testing.T) {
	rng := xrand.New(4)
	d, err := dualgraph.SingleHopCluster(5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	agreeCount := 0
	const trials = 5
	for trial := uint64(0); trial < trials; trial++ {
		initial := make([]any, d.N())
		for u := range initial {
			initial[u] = u * 10
		}
		e, cons, p := buildConsensus(t, d, initial, 2, sched.Random{P: 0.5, Seed: trial}, 100+trial)
		budget := 3 * 2 * (p.TAckBound() + p.PhaseLen())
		for r := 0; r < budget; r++ {
			e.Step()
			if _, done := cons.Done(); done {
				break
			}
		}
		if _, done := cons.Done(); !done {
			t.Fatalf("trial %d: no termination", trial)
		}
		if _, agree := cons.Agreement(); agree {
			agreeCount++
		}
	}
	if agreeCount < trials-1 {
		t.Errorf("agreement in %d/%d trials", agreeCount, trials)
	}
}

func TestConsensusSingleNode(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, cons, p := buildConsensus(t, d, []any{"solo"}, 1, nil, 5)
	e.Run(2 * (p.TAckBound() + p.PhaseLen()))
	v, ok := cons.Decision(0)
	if !ok || v != "solo" {
		t.Errorf("Decision = %v, %v", v, ok)
	}
	if _, agree := cons.Agreement(); !agree {
		t.Error("singleton disagrees with itself")
	}
}

func TestConsensusUndecidedAccessors(t *testing.T) {
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, cons, _ := buildConsensus(t, d, []any{1, 2}, 1, nil, 6)
	if _, ok := cons.Decision(0); ok {
		t.Error("decision available before running")
	}
	if _, done := cons.Done(); done {
		t.Error("done before running")
	}
	if _, agree := cons.Agreement(); agree {
		t.Error("agreement with zero decided nodes")
	}
}
