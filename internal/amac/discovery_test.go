package amac

import (
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// buildDiscovery assembles LBAlg + Discovery over a dual graph.
func buildDiscovery(t testing.TB, d *dualgraph.Dual, beacons int, seed uint64) (*sim.Engine, *Discovery, core.Params) {
	t.Helper()
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), max(1, d.R), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	layers := make([]Layer, d.N())
	procs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		layers[u] = NewAdapter(alg, FromLBParams(p))
		procs[u] = alg
	}
	disc := NewDiscovery(layers, beacons)
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sched.Random{P: 0.5, Seed: seed}, Env: disc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e, disc, p
}

func TestDiscoveryCluster(t *testing.T) {
	rng := xrand.New(1)
	d, err := dualgraph.SingleHopCluster(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, disc, p := buildDiscovery(t, d, 2, 2)
	budget := 3 * 2 * (p.TAckBound() + p.PhaseLen())
	for r := 0; r < budget && !disc.Done(); r++ {
		e.Step()
	}
	if !disc.Done() {
		t.Fatal("discovery did not finish its beacon budget")
	}
	// With two beacons at ε=¼, missing a reliable neighbor happens with
	// probability ≤ 1/16 per pair; on a 6-clique demand near-full discovery.
	missing := 0
	for u := 0; u < d.N(); u++ {
		for v := 0; v < d.N(); v++ {
			if u != v && !disc.Knows(u, v) {
				missing++
			}
		}
	}
	if missing > 4 {
		t.Errorf("%d of %d neighbor relations undiscovered", missing, d.N()*(d.N()-1))
	}
}

func TestDiscoveryNoFalsePositives(t *testing.T) {
	// Two isolated cliques with unreliable links excluded: no node may
	// discover a node from the other clique (validity).
	rng := xrand.New(3)
	d, err := dualgraph.TwoTierClusters(2, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), d.R, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	layers := make([]Layer, d.N())
	procs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		layers[u] = NewAdapter(alg, FromLBParams(p))
		procs[u] = alg
	}
	disc := NewDiscovery(layers, 1)
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sched.Never{}, Env: disc, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2 * (p.TAckBound() + p.PhaseLen()))
	for u := 0; u < d.N(); u++ {
		for _, v := range disc.Neighbors(u) {
			if u/4 != v/4 {
				t.Errorf("node %d discovered %d across an excluded unreliable link", u, v)
			}
			if v == u {
				t.Errorf("node %d discovered itself", u)
			}
		}
	}
}

func TestDiscoveryNeighborsSorted(t *testing.T) {
	rng := xrand.New(5)
	d, err := dualgraph.SingleHopCluster(5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, disc, p := buildDiscovery(t, d, 1, 6)
	e.Run(2 * (p.TAckBound() + p.PhaseLen()))
	for u := 0; u < d.N(); u++ {
		nbrs := disc.Neighbors(u)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("Neighbors(%d) = %v not sorted/unique", u, nbrs)
			}
		}
	}
}

func TestDiscoveryBeaconFloor(t *testing.T) {
	if NewDiscovery(nil, 0).beacons != 1 {
		t.Error("beacon floor not applied")
	}
}
