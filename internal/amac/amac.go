package amac

import (
	"fmt"

	"lbcast/internal/core"
	"lbcast/internal/sim"
)

// Guarantees are the abstract MAC layer's advertised bounds.
type Guarantees struct {
	// FAck bounds bcast→ack latency in rounds (with probability ≥ 1−Eps).
	FAck int
	// FProg bounds the progress latency in rounds (with probability ≥ 1−Eps).
	FProg int
	// Eps is the per-property error bound.
	Eps float64
}

// FromLBParams derives the layer guarantees from an LBAlg schedule,
// mediating between the low-level round-based definition and the layer's
// event-based one exactly as the paper's conclusion sketches.
func FromLBParams(p core.Params) Guarantees {
	return Guarantees{FAck: p.TAckBound(), FProg: p.TProgBound(), Eps: p.Eps1}
}

// Layer is one node's abstract MAC endpoint.
type Layer interface {
	// Bcast hands a message to the layer; the layer eventually acks it.
	Bcast(payload any) (sim.MsgID, error)
	// Busy reports whether a message is still in flight (no ack yet).
	Busy() bool
	// SetOnAck and SetOnRecv register the layer's output events.
	SetOnAck(func(core.Message))
	SetOnRecv(func(core.Message, int))
	// Guarantees returns the layer's advertised f_ack/f_prog bounds.
	Guarantees() Guarantees
}

// Adapter lifts any core.Service (LBAlg or a baseline) into a Layer.
type Adapter struct {
	svc core.Service
	g   Guarantees
}

var _ Layer = (*Adapter)(nil)

// NewAdapter wraps the service with the given guarantees.
func NewAdapter(svc core.Service, g Guarantees) *Adapter {
	return &Adapter{svc: svc, g: g}
}

// Bcast implements Layer.
func (a *Adapter) Bcast(payload any) (sim.MsgID, error) { return a.svc.Bcast(payload) }

// Busy implements Layer.
func (a *Adapter) Busy() bool { return a.svc.Active() }

// SetOnAck implements Layer.
func (a *Adapter) SetOnAck(fn func(core.Message)) { a.svc.SetOnAck(fn) }

// SetOnRecv implements Layer.
func (a *Adapter) SetOnRecv(fn func(core.Message, int)) { a.svc.SetOnRecv(fn) }

// Guarantees implements Layer.
func (a *Adapter) Guarantees() Guarantees { return a.g }

// FloodKey identifies one flooded message across relays: the pair
// (originator, sequence at originator).
type FloodKey struct {
	Origin int
	Seq    int
}

// FloodPayload is the application payload relayed hop by hop.
type FloodPayload struct {
	Key  FloodKey
	Body any
}

// Flood coordinates multi-hop global broadcast over per-node abstract MAC
// layers: every node re-broadcasts each distinct flooded message exactly
// once (the basic MMB algorithm of the abstract MAC layer literature).
// It implements sim.Environment.
type Flood struct {
	layers []Layer

	queue     [][]FloodPayload // per-node relay queues
	relayed   []map[FloodKey]struct{}
	delivered []map[FloodKey]struct{}

	deliveredCount map[FloodKey]int
	completionAt   map[FloodKey]int
	startAt        map[FloodKey]int
	nextSeq        int
	round          int
}

var _ sim.Environment = (*Flood)(nil)

// NewFlood wires the controller to the per-node layers.
func NewFlood(layers []Layer) *Flood {
	f := &Flood{
		layers:         layers,
		queue:          make([][]FloodPayload, len(layers)),
		relayed:        make([]map[FloodKey]struct{}, len(layers)),
		delivered:      make([]map[FloodKey]struct{}, len(layers)),
		deliveredCount: make(map[FloodKey]int),
		completionAt:   make(map[FloodKey]int),
		startAt:        make(map[FloodKey]int),
	}
	for u := range layers {
		f.relayed[u] = make(map[FloodKey]struct{})
		f.delivered[u] = make(map[FloodKey]struct{})
		u := u
		layers[u].SetOnRecv(func(m core.Message, _ int) {
			fp, ok := m.Payload.(FloodPayload)
			if !ok {
				return
			}
			f.noteDelivered(u, fp.Key)
			f.enqueueRelay(u, fp)
		})
	}
	return f
}

// Start injects a new flood at the origin node; the message counts as
// delivered at the origin immediately. It returns the flood's key.
func (f *Flood) Start(origin int, body any) (FloodKey, error) {
	if origin < 0 || origin >= len(f.layers) {
		return FloodKey{}, fmt.Errorf("amac: origin %d out of range", origin)
	}
	f.nextSeq++
	key := FloodKey{Origin: origin, Seq: f.nextSeq}
	fp := FloodPayload{Key: key, Body: body}
	f.startAt[key] = f.round + 1
	f.noteDelivered(origin, key)
	f.enqueueRelay(origin, fp) // the origin "relays" its own message first
	return key, nil
}

func (f *Flood) noteDelivered(u int, key FloodKey) {
	if _, dup := f.delivered[u][key]; dup {
		return
	}
	f.delivered[u][key] = struct{}{}
	f.deliveredCount[key]++
	if f.deliveredCount[key] == len(f.layers) {
		f.completionAt[key] = f.round
	}
}

func (f *Flood) enqueueRelay(u int, fp FloodPayload) {
	if _, dup := f.relayed[u][fp.Key]; dup {
		return
	}
	f.relayed[u][fp.Key] = struct{}{}
	f.queue[u] = append(f.queue[u], fp)
}

// BeforeRound implements sim.Environment: idle nodes start their next
// queued relay.
func (f *Flood) BeforeRound(t int) {
	f.round = t
	for u, layer := range f.layers {
		if len(f.queue[u]) == 0 || layer.Busy() {
			continue
		}
		fp := f.queue[u][0]
		if _, err := layer.Bcast(fp); err != nil {
			continue // still busy; retry next round
		}
		f.queue[u] = f.queue[u][1:]
	}
}

// AfterRound implements sim.Environment.
func (f *Flood) AfterRound(t int) { f.round = t }

// Delivered reports whether node u has the flood (origin counts).
func (f *Flood) Delivered(u int, key FloodKey) bool {
	_, ok := f.delivered[u][key]
	return ok
}

// Coverage returns how many nodes hold the flood.
func (f *Flood) Coverage(key FloodKey) int { return f.deliveredCount[key] }

// Complete reports whether every node holds the flood, and the round at
// which the last node got it.
func (f *Flood) Complete(key FloodKey) (round int, done bool) {
	round, done = f.completionAt[key]
	return round, done
}

// Latency returns completion round − start round, once complete.
func (f *Flood) Latency(key FloodKey) (int, bool) {
	end, done := f.completionAt[key]
	if !done {
		return 0, false
	}
	return end - f.startAt[key], true
}
