// Package amac renders LBAlg as an implementation of the (probabilistic)
// abstract MAC layer of Kuhn, Lynch and Newport [14, 16], and composes
// higher-level algorithms on top of it.
//
// The abstract MAC layer exposes exactly the bcast/ack/recv interface of
// the LB problem together with two latency guarantees: f_ack bounds the
// time from a bcast to its ack, and f_prog bounds the time until a node
// with an actively-broadcasting neighbor receives some message. Theorem 4.1
// provides both bounds for LBAlg with error ε, which is what "ports the
// corpus of abstract-MAC-layer algorithms to the dual graph model".
//
// Two such ported algorithms are included: single-message multi-hop flood
// (global broadcast) and multi-message flood (MMB), both in the style the
// abstract MAC layer literature studies [10, 12].
package amac
