package amac

import (
	"sort"

	"lbcast/internal/core"
	"lbcast/internal/sim"
)

// Discovery is neighbor discovery composed over the abstract MAC layer, in
// the style of Cornejo, Lynch, Viqar and Welch [5, 6]: every node
// repeatedly broadcasts a hello beacon through the layer and records the
// senders it hears. After each node has completed `Beacons` broadcasts, a
// node's discovered set approximates its G neighborhood: the layer's
// reliability guarantee says each beacon reaches all reliable neighbors
// with probability ≥ 1−ε, so k beacons miss a reliable neighbor with
// probability ≤ ε^k, while validity guarantees no false positives outside
// the G′ neighborhood.
//
// Discovery implements sim.Environment.
type Discovery struct {
	layers []Layer
	// Beacons is how many hello broadcasts each node performs (≥ 1).
	beacons int

	sent       []int
	discovered []map[int]struct{}
}

var _ sim.Environment = (*Discovery)(nil)

// helloPayload is a beacon; the sender travels in the message ID.
type helloPayload struct{}

// NewDiscovery wires a discovery protocol over the per-node layers.
func NewDiscovery(layers []Layer, beacons int) *Discovery {
	if beacons < 1 {
		beacons = 1
	}
	d := &Discovery{
		layers:     layers,
		beacons:    beacons,
		sent:       make([]int, len(layers)),
		discovered: make([]map[int]struct{}, len(layers)),
	}
	for u := range layers {
		d.discovered[u] = make(map[int]struct{})
		u := u
		layers[u].SetOnRecv(func(m core.Message, _ int) {
			if _, ok := m.Payload.(helloPayload); ok {
				d.discovered[u][m.ID.Src()] = struct{}{}
			}
		})
	}
	return d
}

// BeforeRound implements sim.Environment: idle nodes with beacon budget
// left start the next hello.
func (d *Discovery) BeforeRound(int) {
	for u, layer := range d.layers {
		if d.sent[u] >= d.beacons || layer.Busy() {
			continue
		}
		if _, err := layer.Bcast(helloPayload{}); err == nil {
			d.sent[u]++
		}
	}
}

// AfterRound implements sim.Environment.
func (d *Discovery) AfterRound(int) {}

// Done reports whether every node has finished its beacon budget (all
// broadcasts issued and acknowledged).
func (d *Discovery) Done() bool {
	for u, layer := range d.layers {
		if d.sent[u] < d.beacons || layer.Busy() {
			return false
		}
	}
	return true
}

// Neighbors returns the sorted ids node u has discovered.
func (d *Discovery) Neighbors(u int) []int {
	out := make([]int, 0, len(d.discovered[u]))
	for v := range d.discovered[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Knows reports whether u has discovered v.
func (d *Discovery) Knows(u, v int) bool {
	_, ok := d.discovered[u][v]
	return ok
}
