package amac

import (
	"fmt"

	"lbcast/internal/core"
	"lbcast/internal/sim"
)

// Consensus is single-hop consensus composed over the abstract MAC layer,
// in the spirit of Newport's "Consensus with an Abstract MAC Layer"
// (PODC 2014, [20] in the paper): participants know nothing about the
// network beyond their own id and communicate only through bcast/ack/recv.
//
// The algorithm is the min-id race variant: every node repeatedly
// broadcasts its current preference tagged with the smallest owner id it
// has seen; hearing a proposal with a smaller owner causes adoption. After
// completing Cycles broadcasts, a node decides its preference.
//
//   - Validity: decided values are initial values (only initial values ever
//     circulate).
//   - Termination: deterministic — each node decides after Cycles
//     acknowledged broadcasts (≤ Cycles·(f_ack + t_prog) rounds).
//   - Agreement: probabilistic — if any broadcast by the minimum-id
//     owner's current carrier reaches all nodes (probability ≥ 1−ε per the
//     layer's reliability guarantee, amplified by repetition), every node
//     converges to the same (owner, value) pair. Disagreement probability
//     decays like ε^Cycles in a single-hop network.
//
// Consensus implements sim.Environment.
type Consensus struct {
	layers []Layer
	cycles int

	prefOwner []int
	prefValue []any
	sent      []int
	decided   []bool
	decision  []any
	doneAt    int
	round     int
}

var _ sim.Environment = (*Consensus)(nil)

// proposal is the payload raced through the layer.
type proposal struct {
	Owner int
	Value any
}

// NewConsensus wires the protocol over the per-node layers with the given
// initial values (one per node). cycles ≥ 1 is the per-node broadcast
// budget; larger values square away the disagreement probability.
func NewConsensus(layers []Layer, initial []any, cycles int) (*Consensus, error) {
	if len(initial) != len(layers) {
		return nil, fmt.Errorf("amac: %d initial values for %d layers", len(initial), len(layers))
	}
	if cycles < 1 {
		cycles = 1
	}
	c := &Consensus{
		layers:    layers,
		cycles:    cycles,
		prefOwner: make([]int, len(layers)),
		prefValue: make([]any, len(layers)),
		sent:      make([]int, len(layers)),
		decided:   make([]bool, len(layers)),
		decision:  make([]any, len(layers)),
		doneAt:    -1,
	}
	for u := range layers {
		c.prefOwner[u] = u
		c.prefValue[u] = initial[u]
		u := u
		layers[u].SetOnRecv(func(m core.Message, _ int) {
			p, ok := m.Payload.(proposal)
			if !ok {
				return
			}
			if p.Owner < c.prefOwner[u] {
				c.prefOwner[u] = p.Owner
				c.prefValue[u] = p.Value
			}
		})
	}
	return c, nil
}

// BeforeRound implements sim.Environment.
func (c *Consensus) BeforeRound(t int) {
	c.round = t
	for u, layer := range c.layers {
		if c.decided[u] || layer.Busy() {
			continue
		}
		if c.sent[u] >= c.cycles {
			c.decided[u] = true
			c.decision[u] = c.prefValue[u]
			if c.doneAt < 0 && c.allDecided() {
				c.doneAt = t
			}
			continue
		}
		if _, err := layer.Bcast(proposal{Owner: c.prefOwner[u], Value: c.prefValue[u]}); err == nil {
			c.sent[u]++
		}
	}
}

// AfterRound implements sim.Environment.
func (c *Consensus) AfterRound(t int) { c.round = t }

func (c *Consensus) allDecided() bool {
	for _, d := range c.decided {
		if !d {
			return false
		}
	}
	return true
}

// Done reports whether every node has decided, and the round at which the
// last decision happened.
func (c *Consensus) Done() (round int, done bool) {
	if c.doneAt < 0 {
		return 0, false
	}
	return c.doneAt, true
}

// Decision returns node u's decided value (ok=false before it decides).
func (c *Consensus) Decision(u int) (any, bool) {
	if !c.decided[u] {
		return nil, false
	}
	return c.decision[u], true
}

// Agreement reports whether all decided nodes decided the same value, and
// that value.
func (c *Consensus) Agreement() (value any, agree bool) {
	first := true
	for u := range c.layers {
		if !c.decided[u] {
			continue
		}
		if first {
			value, first = c.decision[u], false
			continue
		}
		if c.decision[u] != value {
			return nil, false
		}
	}
	return value, !first
}
