module lbcast

go 1.24
