// Package lbcast is a local broadcast layer for unreliable radio networks:
// a Go implementation of Lynch & Newport, "A (Truly) Local Broadcast Layer
// for Unreliable Radio Networks" (PODC 2015).
//
// The package simulates a synchronous dual graph radio network — reliable
// links G plus adversarially scheduled unreliable links G′ — and runs the
// paper's LBAlg local broadcast service on every node. The service offers
// the bcast/ack/recv interface of a (probabilistic) abstract MAC layer with
// two guarantees parameterised by an error bound ε:
//
//   - Reliability: a broadcast reaches every reliable neighbor before its
//     acknowledgement with probability ≥ 1−ε, within t_ack rounds.
//   - Progress: a node whose reliable neighbor is actively broadcasting
//     throughout a t_prog-round phase receives some message with
//     probability ≥ 1−ε.
//
// Both bounds depend only on local quantities (the degree bounds Δ and Δ′,
// the geographic parameter r and ε) — never on the network size n.
//
// Quick start:
//
//	nw, err := lbcast.NewCluster(8, lbcast.WithEpsilon(0.1))
//	if err != nil { ... }
//	nw.OnReceive(func(node int, d lbcast.Delivery) { fmt.Println(node, d.Payload) })
//	id, _ := nw.Broadcast(0, "hello")
//	nw.RunUntilAck(id)
//
// The internal packages hold the full machinery: the round engine, seed
// agreement, the LB(t_ack, t_prog, ε) specification checker, baselines and
// the experiment harness (see docs/ARCHITECTURE.md and docs/EXPERIMENTS.md).
package lbcast

import (
	"fmt"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// Point is a position in the plane used for geometric network construction.
type Point struct {
	X, Y float64
}

// MessageID identifies a broadcast accepted by the service.
type MessageID = sim.MsgID

// Delivery describes one recv output at a node.
type Delivery struct {
	// ID is the message identity; ID.Src() is the broadcaster.
	ID MessageID
	// From is the node heard on the air (always the broadcaster in LBAlg).
	From int
	// Payload is the broadcast payload.
	Payload any
	// Round is the reception round.
	Round int
}

// Schedule summarises the derived LBAlg timing for a network.
type Schedule struct {
	// Epsilon is the configured error bound ε.
	Epsilon float64
	// Delta and DeltaPrime are the network's degree bounds.
	Delta, DeltaPrime int
	// TProg and TAck are the Theorem 4.1 latency bounds in rounds.
	TProg, TAck int
	// PhaseRounds is the full phase length (seed agreement + body).
	PhaseRounds int
}

// Scheduler selects the unreliable-link adversary for a network.
type Scheduler struct {
	impl sim.LinkScheduler
	name string
}

// ScheduleNever excludes all unreliable links (benign).
func ScheduleNever() Scheduler { return Scheduler{impl: sched.Never{}, name: "never"} }

// ScheduleAlways includes all unreliable links every round.
func ScheduleAlways() Scheduler { return Scheduler{impl: sched.Always{}, name: "always"} }

// ScheduleRandom includes each unreliable link independently with
// probability p each round (obliviously, keyed by seed).
func ScheduleRandom(p float64, seed uint64) Scheduler {
	return Scheduler{impl: sched.NewRandom(p, seed), name: "random"}
}

// ScheduleAntiDecay is the paper's §1 adversary tuned against fixed
// probability cycles of the given length.
func ScheduleAntiDecay(cycleLen int) Scheduler {
	return Scheduler{impl: sched.AntiDecay{CycleLen: cycleLen}, name: "anti-decay"}
}

// Driver selects how the simulator executes rounds. All drivers produce
// bit-identical executions; they differ only in concurrency.
type Driver int

const (
	// DriverSequential steps nodes in a single goroutine (default).
	DriverSequential Driver = iota + 1
	// DriverWorkerPool parallelises node steps over a worker pool.
	DriverWorkerPool
	// DriverGoroutinePerNode runs every simulated radio as its own
	// goroutine, synchronised by round barriers.
	DriverGoroutinePerNode
)

// Option configures network construction.
type Option func(*options)

type options struct {
	eps       float64
	seed      uint64
	scheduler Scheduler
	seedEvery int
	driver    Driver
}

func defaultOptions() options {
	return options{eps: 0.1, seed: 1, scheduler: ScheduleRandom(0.5, 1), seedEvery: 1, driver: DriverSequential}
}

// WithEpsilon sets the service error bound ε ∈ (0, ½]. Default 0.1.
func WithEpsilon(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithSeed sets the experiment seed resolving all node randomness.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithScheduler selects the unreliable-link adversary. Default: random ½.
func WithScheduler(s Scheduler) Option { return func(o *options) { o.scheduler = s } }

// WithSeedAgreementEvery runs the seed agreement preamble every k phases
// (the Section 4.2 variant). Default 1.
func WithSeedAgreementEvery(k int) Option { return func(o *options) { o.seedEvery = k } }

// WithDriver selects the execution driver. Default DriverSequential.
func WithDriver(d Driver) Option { return func(o *options) { o.driver = d } }

// Network is a simulated dual graph radio network running the local
// broadcast service on every node. It is not safe for concurrent use.
type Network struct {
	dual   *dualgraph.Dual
	engine *sim.Engine
	bank   *core.NodeStateBank
	params core.Params

	onReceive func(node int, d Delivery)
	onAck     func(node int, id MessageID)
	acked     map[MessageID]bool
}

// NewGeometric builds a network from an explicit embedding: vertices within
// distance 1 get reliable links, pairs within (1, r] get unreliable links,
// and farther pairs are unconnected (the r-geographic model).
func NewGeometric(points []Point, r float64, opts ...Option) (*Network, error) {
	emb := make([]geo.Point, len(points))
	for i, p := range points {
		emb[i] = geo.Point{X: p.X, Y: p.Y}
	}
	o := gather(opts)
	d, err := dualFromEmbedding(emb, r, o)
	if err != nil {
		return nil, err
	}
	return assemble(d, o)
}

// NewCluster builds a single-hop cluster of n nodes (a reliable clique),
// the paper's canonical local setting.
func NewCluster(n int, opts ...Option) (*Network, error) {
	o := gather(opts)
	d, err := dualgraph.SingleHopCluster(n, 1, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	return assemble(d, o)
}

// NewRandomGeometric scatters n nodes uniformly over a w×h area with
// geographic parameter r; all grey-zone links are unreliable.
func NewRandomGeometric(n int, w, h, r float64, opts ...Option) (*Network, error) {
	o := gather(opts)
	d, err := dualgraph.RandomGeometric(n, w, h, r, dualgraph.GreyUnreliable, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	return assemble(d, o)
}

func gather(opts []Option) options {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func dualFromEmbedding(emb []geo.Point, r float64, o options) (*dualgraph.Dual, error) {
	g, gp := dualgraph.NewGraph(len(emb)), dualgraph.NewGraph(len(emb))
	for u := range emb {
		for v := u + 1; v < len(emb); v++ {
			switch dist := geo.Dist(emb[u], emb[v]); {
			case dist <= 1:
				g.AddEdge(u, v)
				gp.AddEdge(u, v)
			case dist <= r:
				gp.AddEdge(u, v)
			}
		}
	}
	return dualgraph.NewDual(g, gp, emb, r)
}

func assemble(d *dualgraph.Dual, o options) (*Network, error) {
	delta, deltaPrime := d.Delta(), d.DeltaPrime()
	if delta == 0 {
		return nil, fmt.Errorf("lbcast: empty network")
	}
	params, err := core.DeriveParams(delta, deltaPrime, d.R, o.eps,
		core.WithSeedEveryKPhases(o.seedEvery))
	if err != nil {
		return nil, err
	}
	nw := &Network{dual: d, params: params, acked: make(map[MessageID]bool)}
	// One precomputed phase schedule serves every node (the plan is
	// read-only to the processes), and one state bank holds every node's
	// protocol state in flat columns: the engine steps it through the batch
	// range path (sim.ProcessBank), which the core lockstep oracle test pins
	// bit-identical to per-node LBAlg processes.
	plan := core.NewPhasePlan(params)
	nw.bank = core.NewNodeStateBank(plan, d.N())
	for u := 0; u < d.N(); u++ {
		node := u
		nw.bank.Node(u).SetOnRecv(func(m core.Message, from int) {
			if nw.onReceive != nil {
				nw.onReceive(node, Delivery{ID: m.ID, From: from, Payload: m.Payload, Round: nw.engine.Round()})
			}
		})
		nw.bank.Node(u).SetOnAck(func(m core.Message) {
			nw.acked[m.ID] = true
			if nw.onAck != nil {
				nw.onAck(node, m.ID)
			}
		})
	}
	var driver sim.Driver
	switch o.driver {
	case DriverWorkerPool:
		driver = sim.DriverWorkerPool
	case DriverGoroutinePerNode:
		driver = sim.DriverGoroutinePerNode
	default:
		driver = sim.DriverSequential
	}
	engine, err := sim.New(sim.Config{Dual: d, Procs: nw.bank.Procs(), Bank: nw.bank,
		Sched: o.scheduler.impl, Seed: o.seed, Driver: driver})
	if err != nil {
		return nil, err
	}
	nw.engine = engine
	return nw, nil
}

// Close releases driver resources: the persistent worker pool of
// DriverWorkerPool and the node goroutines of DriverGoroutinePerNode.
// Networks using either driver must be Closed or their goroutines leak for
// the process lifetime; for DriverSequential it is a no-op. Safe to call
// repeatedly.
func (nw *Network) Close() { nw.engine.Close() }

// Size returns the number of nodes.
func (nw *Network) Size() int { return nw.dual.N() }

// Schedule returns the derived timing bounds.
func (nw *Network) Schedule() Schedule {
	return Schedule{
		Epsilon:     nw.params.Eps1,
		Delta:       nw.params.Delta,
		DeltaPrime:  nw.params.DeltaPrime,
		TProg:       nw.params.TProgBound(),
		TAck:        nw.params.TAckBound(),
		PhaseRounds: nw.params.PhaseLen(),
	}
}

// OnReceive registers the recv output handler (one per network).
func (nw *Network) OnReceive(fn func(node int, d Delivery)) { nw.onReceive = fn }

// OnAck registers the ack output handler (one per network).
func (nw *Network) OnAck(fn func(node int, id MessageID)) { nw.onAck = fn }

// Broadcast hands a message to node's local broadcast service. It fails if
// the node is still broadcasting a previous message (the service supports
// one outstanding broadcast per node, per the problem's environment rules).
func (nw *Network) Broadcast(node int, payload any) (MessageID, error) {
	if node < 0 || node >= nw.Size() {
		return 0, fmt.Errorf("lbcast: node %d out of range [0,%d)", node, nw.Size())
	}
	return nw.bank.Node(node).Bcast(payload)
}

// Busy reports whether the node has a broadcast in flight.
func (nw *Network) Busy(node int) bool { return nw.bank.Node(node).Active() }

// Acked reports whether the given broadcast has been acknowledged.
func (nw *Network) Acked(id MessageID) bool { return nw.acked[id] }

// Round returns the number of executed rounds.
func (nw *Network) Round() int { return nw.engine.Round() }

// Step executes one synchronous round.
func (nw *Network) Step() { nw.engine.Step() }

// Run executes the given number of rounds.
func (nw *Network) Run(rounds int) { nw.engine.Run(rounds) }

// RunUntilAck runs until the broadcast is acknowledged, at most t_ack
// rounds past the current round (the deterministic deadline). It reports
// whether the ack arrived.
func (nw *Network) RunUntilAck(id MessageID) bool {
	deadline := nw.engine.Round() + nw.params.TAckBound() + nw.params.PhaseLen()
	for nw.engine.Round() < deadline {
		if nw.acked[id] {
			return true
		}
		nw.engine.Step()
	}
	return nw.acked[id]
}

// Stats returns aggregate channel statistics for the executed rounds.
func (nw *Network) Stats() (transmissions, deliveries, collisions int) {
	tr := nw.engine.Trace()
	return tr.Transmissions, tr.Deliveries, tr.Collisions
}
