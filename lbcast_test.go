package lbcast

import (
	"testing"
)

func TestNewClusterBasics(t *testing.T) {
	nw, err := NewCluster(6, WithEpsilon(0.25), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 6 {
		t.Errorf("Size = %d", nw.Size())
	}
	s := nw.Schedule()
	if s.Delta != 6 || s.Epsilon != 0.25 {
		t.Errorf("Schedule = %+v", s)
	}
	if s.TAck < s.TProg || s.TProg < 1 {
		t.Errorf("bounds inconsistent: %+v", s)
	}
	if s.PhaseRounds != s.TProg {
		t.Errorf("phase length %d ≠ t_prog %d", s.PhaseRounds, s.TProg)
	}
}

func TestBroadcastDeliveryAndAck(t *testing.T) {
	nw, err := NewCluster(5, WithEpsilon(0.2), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	recvd := map[int]bool{}
	nw.OnReceive(func(node int, d Delivery) {
		if d.Payload != "hi" {
			t.Errorf("payload = %v", d.Payload)
		}
		if d.ID.Src() != 0 || d.From != 0 {
			t.Errorf("delivery origin wrong: %+v", d)
		}
		recvd[node] = true
	})
	var ackedNode = -1
	nw.OnAck(func(node int, id MessageID) { ackedNode = node })

	id, err := nw.Broadcast(0, "hi")
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Busy(0) {
		t.Error("node 0 not busy after Broadcast")
	}
	if !nw.RunUntilAck(id) {
		t.Fatal("broadcast never acknowledged")
	}
	if !nw.Acked(id) || ackedNode != 0 {
		t.Errorf("ack bookkeeping: acked=%v node=%d", nw.Acked(id), ackedNode)
	}
	if nw.Busy(0) {
		t.Error("node 0 still busy after ack")
	}
	// ε=0.2 on a 5-clique: all four neighbors should usually have received.
	if len(recvd) < 3 {
		t.Errorf("only %d neighbors received", len(recvd))
	}
	tx, del, _ := nw.Stats()
	if tx == 0 || del == 0 {
		t.Errorf("stats empty: tx=%d del=%d", tx, del)
	}
}

func TestBroadcastValidation(t *testing.T) {
	nw, err := NewCluster(3, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(-1, "x"); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := nw.Broadcast(3, "x"); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := nw.Broadcast(0, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(0, "second"); err == nil {
		t.Error("second broadcast accepted while busy")
	}
}

func TestNewGeometric(t *testing.T) {
	// Two nodes at distance 0.5 (reliable) and one at 1.5 (unreliable from
	// the middle with r=2).
	pts := []Point{{0, 0}, {0.5, 0}, {2, 0}}
	nw, err := NewGeometric(pts, 2, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 3 {
		t.Errorf("Size = %d", nw.Size())
	}
	s := nw.Schedule()
	if s.DeltaPrime < s.Delta {
		t.Errorf("Δ'=%d < Δ=%d", s.DeltaPrime, s.Delta)
	}
}

func TestNewGeometricInvalid(t *testing.T) {
	if _, err := NewGeometric(nil, 1); err == nil {
		t.Error("empty embedding accepted")
	}
	if _, err := NewGeometric([]Point{{0, 0}}, 0.5); err == nil {
		t.Error("r < 1 accepted")
	}
}

func TestNewRandomGeometric(t *testing.T) {
	nw, err := NewRandomGeometric(40, 4, 4, 1.5, WithSeed(11), WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 40 {
		t.Errorf("Size = %d", nw.Size())
	}
	nw.Run(10)
	if nw.Round() != 10 {
		t.Errorf("Round = %d", nw.Round())
	}
}

func TestDeterminismAcrossNetworks(t *testing.T) {
	run := func() (int, int, int) {
		nw, err := NewCluster(6, WithSeed(42), WithEpsilon(0.25))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Broadcast(0, "d"); err != nil {
			t.Fatal(err)
		}
		nw.Run(500)
		return nw.Stats()
	}
	t1, d1, c1 := run()
	t2, d2, c2 := run()
	if t1 != t2 || d1 != d2 || c1 != c2 {
		t.Errorf("identical configs diverged: (%d,%d,%d) vs (%d,%d,%d)", t1, d1, c1, t2, d2, c2)
	}
}

func TestSchedulerOptions(t *testing.T) {
	for _, s := range []Scheduler{ScheduleNever(), ScheduleAlways(), ScheduleRandom(0.3, 5), ScheduleAntiDecay(4)} {
		nw, err := NewRandomGeometric(15, 3, 3, 2, WithScheduler(s), WithSeed(6))
		if err != nil {
			t.Fatalf("scheduler %s: %v", s.name, err)
		}
		nw.Run(50)
	}
}

func TestSeedAgreementEveryOption(t *testing.T) {
	nw, err := NewCluster(4, WithSeedAgreementEvery(2), WithSeed(8), WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	id, err := nw.Broadcast(0, "k2")
	if err != nil {
		t.Fatal(err)
	}
	if !nw.RunUntilAck(id) {
		t.Error("no ack under k=2 seed agreement")
	}
}

func TestEmptyNetworkRejected(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestDriverParityThroughFacade(t *testing.T) {
	run := func(d Driver) (int, int, int) {
		nw, err := NewCluster(6, WithSeed(77), WithEpsilon(0.25), WithDriver(d))
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		if _, err := nw.Broadcast(0, "parity"); err != nil {
			t.Fatal(err)
		}
		nw.Run(600)
		return nw.Stats()
	}
	t1, d1, c1 := run(DriverSequential)
	for _, d := range []Driver{DriverWorkerPool, DriverGoroutinePerNode} {
		t2, d2, c2 := run(d)
		if t1 != t2 || d1 != d2 || c1 != c2 {
			t.Errorf("driver %d diverged: (%d,%d,%d) vs (%d,%d,%d)", d, t2, d2, c2, t1, d1, c1)
		}
	}
}
