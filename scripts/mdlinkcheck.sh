#!/usr/bin/env bash
# mdlinkcheck.sh — verify that every relative markdown link in the given
# files points at an existing file (or file#anchor). External (http/https/
# mailto) links and pure in-page anchors are skipped; this is a docs-drift
# gate, not a network crawler.
#
# Usage: scripts/mdlinkcheck.sh README.md ROADMAP.md docs/*.md
set -u

fail=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "mdlinkcheck: $file: no such file" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$file")
  # Extract the (target) of every [text](target) occurrence.
  while IFS= read -r target; do
    case "$target" in
    http://* | https://* | mailto:*) continue ;;
    '#'*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "mdlinkcheck: $file: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done
exit $fail
