#!/usr/bin/env bash
# mdlinkcheck.sh — verify that every relative markdown link in the given
# files points at an existing file, and that file#anchor links point at a
# heading that actually exists in the target markdown file (GitHub-style
# slugs: lowercased, punctuation stripped, spaces to dashes). External
# (http/https/mailto) links and pure in-page anchors are skipped; this is a
# docs-drift gate, not a network crawler.
#
# Usage: scripts/mdlinkcheck.sh README.md ROADMAP.md docs/*.md
set -u

# slugs FILE — print the GitHub anchor slug of every heading in FILE
# (closed-ATX "## Foo ##" trailers and surrounding spaces are trimmed; the
# "-N" suffixes GitHub appends to duplicate headings are not generated, so
# keep linked headings unique).
slugs() {
  grep -E '^#{1,6} ' "$1" |
    sed -E 's/^#{1,6} +//; s/ +#+ *$//; s/^ +//; s/ +$//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

fail=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "mdlinkcheck: $file: no such file" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$file")
  # Extract the (target) of every [text](target) occurrence.
  while IFS= read -r target; do
    case "$target" in
    http://* | https://* | mailto:*) continue ;;
    '#'*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    resolved=""
    if [ -e "$dir/$path" ]; then
      resolved="$dir/$path"
    elif [ -e "$path" ]; then
      resolved="$path"
    else
      echo "mdlinkcheck: $file: broken link -> $target" >&2
      fail=1
      continue
    fi
    # Anchored link into a markdown file: the heading must exist.
    case "$target" in
    *#*)
      anchor=${target#*#}
      case "$path" in
      *.md)
        if ! slugs "$resolved" | grep -qxF -- "$anchor"; then
          echo "mdlinkcheck: $file: broken anchor -> $target (no heading slug \"$anchor\" in $resolved)" >&2
          fail=1
        fi
        ;;
      esac
      ;;
    esac
  done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done
exit $fail
