#!/usr/bin/env bash
# coverage_ratchet.sh — statement-coverage ratchet for the protocol
# packages (internal/core + internal/xrand: the phase-plan subsystem and
# its bit-level coin machinery; internal/workload: the open-loop traffic
# engine). Runs `go test -coverprofile` over the packages and fails when
# the combined percentage falls below the committed floor, so coverage can
# only move up: raise FLOOR here when it improves.
#
# Usage: scripts/coverage_ratchet.sh [profile-out]
#   profile-out  where to write the merged cover profile
#                (default coverage.out; CI uploads it as an artifact)
set -euo pipefail

# Committed floor: measured 84.9% when the ratchet landed (PR 5), 87.0%
# when internal/workload joined (PR 8).
FLOOR=${COVERAGE_FLOOR:-86.0}
profile=${1:-coverage.out}

go test -coverprofile="$profile" -covermode=atomic ./internal/core/ ./internal/xrand/ ./internal/workload/

total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
  echo "coverage_ratchet: could not read total from $profile" >&2
  exit 2
fi
echo "coverage_ratchet: internal/core + internal/xrand + internal/workload at ${total}% (floor ${FLOOR}%)"
if awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit !(t + 0 < f + 0) }'; then
  echo "coverage_ratchet: ${total}% fell below the committed floor ${FLOOR}%" >&2
  exit 1
fi
