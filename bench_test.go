package lbcast

import (
	"math"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/exp"
	"lbcast/internal/geo"
	"lbcast/internal/sinr"
	"lbcast/internal/xrand"
)

// benchmarkExperiment runs one claim-reproduction experiment per iteration
// at bench scale. Each benchmark regenerates one EXPERIMENTS.md table set;
// run cmd/lbbench for the full-size tables.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.SizeSmall, uint64(i+1)); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Theorem 3.1: seed agreement δ bound.
func BenchmarkSeedDelta(b *testing.B) { benchmarkExperiment(b, "E-SEED-DELTA") }

// Theorem 3.1: seed agreement running time.
func BenchmarkSeedTime(b *testing.B) { benchmarkExperiment(b, "E-SEED-TIME") }

// Seed(δ, ε) specification conditions 1–4.
func BenchmarkSeedSpec(b *testing.B) { benchmarkExperiment(b, "E-SEED-SPEC") }

// Theorem 4.1: progress within t_prog.
func BenchmarkProgress(b *testing.B) { benchmarkExperiment(b, "E-PROG") }

// Theorem 4.1: reliability and t_ack.
func BenchmarkAck(b *testing.B) { benchmarkExperiment(b, "E-ACK") }

// Lemma 4.2: per-round reception probabilities.
func BenchmarkRecvProb(b *testing.B) { benchmarkExperiment(b, "E-RECV-PROB") }

// §4.1 deterministic conditions across workloads.
func BenchmarkDeterministic(b *testing.B) { benchmarkExperiment(b, "E-DET") }

// §1 Discussion: anti-Decay adversary vs fixed schedules.
func BenchmarkAdversarial(b *testing.B) { benchmarkExperiment(b, "E-ADV") }

// §1 near-optimality: Ω(logΔ) progress and Ω(Δ) acknowledgement floors.
func BenchmarkLowerBounds(b *testing.B) { benchmarkExperiment(b, "E-LOWER") }

// [11]: adaptive link schedulers kill progress.
func BenchmarkAdaptive(b *testing.B) { benchmarkExperiment(b, "E-ADAPT") }

// §1 true locality: guarantees independent of n.
func BenchmarkLocality(b *testing.B) { benchmarkExperiment(b, "E-LOCAL") }

// Lemmas A.1–A.3: region partition substrate.
func BenchmarkRegions(b *testing.B) { benchmarkExperiment(b, "E-REGION") }

// Abstract MAC layer composition: global broadcast.
func BenchmarkAmacBroadcast(b *testing.B) { benchmarkExperiment(b, "E-AMAC") }

// §4.2 remark: seed agreement every k phases.
func BenchmarkAblationSeedFreq(b *testing.B) { benchmarkExperiment(b, "E-ABL-FREQ") }

// [9,10] composition: multi-message broadcast over the layer.
func BenchmarkMMB(b *testing.B) { benchmarkExperiment(b, "E-MMB") }

// [20] composition: consensus over the layer.
func BenchmarkConsensus(b *testing.B) { benchmarkExperiment(b, "E-CONSENSUS") }

// Constant calibration sweeps.
func BenchmarkConstants(b *testing.B) { benchmarkExperiment(b, "E-CONST") }

// Comparison workloads: LBAlg vs SINR layer vs contention baselines.
func BenchmarkComparison(b *testing.B) { benchmarkExperiment(b, "E-COMPARE") }

// SINR reception model sanity.
func BenchmarkSINR(b *testing.B) { benchmarkExperiment(b, "E-SINR") }

// BenchmarkBroadcastAck measures one full bcast→ack cycle through the
// public API on an 8-node cluster.
func BenchmarkBroadcastAck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw, err := NewCluster(8, WithEpsilon(0.25), WithSeed(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		id, err := nw.Broadcast(0, i)
		if err != nil {
			b.Fatal(err)
		}
		if !nw.RunUntilAck(id) {
			b.Fatal("no ack")
		}
	}
}

// BenchmarkNetworkRound measures raw round throughput of a 200-node
// geometric network through the public API.
func BenchmarkNetworkRound(b *testing.B) {
	nw, err := NewRandomGeometric(200, 6, 6, 1.5, WithSeed(1), WithEpsilon(0.25))
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < nw.Size(); u += 20 {
		if _, err := nw.Broadcast(u, u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// BenchmarkNetworkRoundLarge is the scaling variant: 1000 nodes, 50
// in-flight broadcasts. The transmitter-scatter kernel keeps per-round work
// proportional to the transmitter neighborhoods, not to Σ deg over all
// listeners, so rounds stay cheap as the network grows.
func BenchmarkNetworkRoundLarge(b *testing.B) {
	benchmarkNetworkRoundLarge(b, DriverSequential)
}

// BenchmarkNetworkRoundLargeParallel is the same workload under the
// worker-pool driver: transmit/deliver phases fan out over the pool and the
// scatter itself is sharded across workers with a deterministic merge, so
// the execution (and its trace) is identical to the sequential run.
func BenchmarkNetworkRoundLargeParallel(b *testing.B) {
	benchmarkNetworkRoundLarge(b, DriverWorkerPool)
}

func benchmarkNetworkRoundLarge(b *testing.B, driver Driver) {
	nw, err := NewRandomGeometric(1000, 13, 13, 1.5, WithSeed(1), WithEpsilon(0.25), WithDriver(driver))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(nw.Close)
	for u := 0; u < nw.Size(); u += 20 {
		if _, err := nw.Broadcast(u, u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// BenchmarkGeometricConstruction measures end-to-end dual graph construction
// at the 10⁴ sweep point: placement, grid-index pair scan, bulk graph build
// and trusted assembly. This is the construction path the CI regression gate
// watches alongside the round benchmarks.
func BenchmarkGeometricConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dualgraph.RandomGeometric(10000, 50, 50, 1.5,
			dualgraph.GreyUnreliable, xrand.New(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSINRRound measures one region-bucketed SINR resolution round at
// the 10⁴ sweep point with 10% of nodes transmitting — the physical-layer
// hot path of the large-n SINR comparison rows.
func BenchmarkSINRRound(b *testing.B) {
	const n = 10000
	rng := xrand.New(1)
	side := math.Sqrt(float64(n) / 4)
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	params := sinr.DefaultParams()
	params.Tolerance = 0.05
	model, err := sinr.NewModel(pos, sinr.UniformPower(1), params)
	if err != nil {
		b.Fatal(err)
	}
	var txs []int32
	for u := 0; u < n; u++ {
		if rng.Coin(0.1) {
			txs = append(txs, int32(u))
		}
	}
	out := make([]int32, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Resolve(i+1, txs, out)
	}
}
