package lbcast_test

import (
	"fmt"

	"lbcast"
)

// ExampleNewCluster demonstrates the core bcast/ack/recv cycle on a
// single-hop cluster. Executions are deterministic given a seed, so the
// output is stable.
func ExampleNewCluster() {
	nw, err := lbcast.NewCluster(4, lbcast.WithEpsilon(0.25), lbcast.WithSeed(7))
	if err != nil {
		panic(err)
	}
	received := 0
	nw.OnReceive(func(node int, d lbcast.Delivery) { received++ })

	id, err := nw.Broadcast(0, "ping")
	if err != nil {
		panic(err)
	}
	fmt.Println("acked:", nw.RunUntilAck(id))
	fmt.Println("all neighbors received:", received == nw.Size()-1)
	// Output:
	// acked: true
	// all neighbors received: true
}

// ExampleNetwork_Schedule shows the locally derived Theorem 4.1 bounds.
func ExampleNetwork_Schedule() {
	nw, err := lbcast.NewCluster(8, lbcast.WithEpsilon(0.1), lbcast.WithSeed(1))
	if err != nil {
		panic(err)
	}
	s := nw.Schedule()
	fmt.Println("Δ:", s.Delta)
	fmt.Println("t_prog == one phase:", s.TProg == s.PhaseRounds)
	fmt.Println("t_ack ≥ t_prog:", s.TAck >= s.TProg)
	// Output:
	// Δ: 8
	// t_prog == one phase: true
	// t_ack ≥ t_prog: true
}

// ExampleWithScheduler runs the same cluster under the anti-Decay adversary;
// the service's guarantees do not depend on which oblivious scheduler runs.
func ExampleWithScheduler() {
	nw, err := lbcast.NewCluster(5,
		lbcast.WithEpsilon(0.25),
		lbcast.WithSeed(3),
		lbcast.WithScheduler(lbcast.ScheduleAntiDecay(3)))
	if err != nil {
		panic(err)
	}
	id, err := nw.Broadcast(2, []byte{0xCA, 0xFE})
	if err != nil {
		panic(err)
	}
	fmt.Println("acked under adversary:", nw.RunUntilAck(id))
	// Output:
	// acked under adversary: true
}
