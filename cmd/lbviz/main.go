package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func main() {
	var (
		n      = flag.Int("n", 60, "node count")
		w      = flag.Float64("w", 8, "area width")
		h      = flag.Float64("h", 6, "area height")
		r      = flag.Float64("r", 1.5, "geographic parameter")
		seed   = flag.Uint64("seed", 1, "placement seed")
		phases = flag.Int("phases", 0, "also run LBAlg for this many phases and show an activity timeline")
	)
	flag.Parse()
	if err := run(*n, *w, *h, *r, *seed, *phases); err != nil {
		fmt.Fprintln(os.Stderr, "lbviz:", err)
		os.Exit(1)
	}
}

func run(n int, w, h, r float64, seed uint64, phases int) error {
	d, err := dualgraph.RandomGeometric(n, w, h, r, dualgraph.GreyUnreliable, xrand.New(seed))
	if err != nil {
		return err
	}
	// Character cell = one grid region (side ½): x → column, y → row.
	cols := int(w/geo.RegionSide) + 1
	rows := int(h/geo.RegionSide) + 1
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	for _, p := range d.Emb {
		id := geo.RegionOf(p)
		if int(id.J) < rows && int(id.I) < cols && id.I >= 0 && id.J >= 0 {
			grid[id.J][id.I]++
		}
	}
	fmt.Printf("dual graph: n=%d Δ=%d Δ'=%d unreliable edges=%d r=%v\n",
		d.N(), d.Delta(), d.DeltaPrime(), len(d.UnreliableEdges()), r)
	fmt.Printf("each cell is one ½×½ grid region; digit = node count (•=0, *≥10)\n\n")
	for row := rows - 1; row >= 0; row-- {
		var b strings.Builder
		for col := 0; col < cols; col++ {
			switch c := grid[row][col]; {
			case c == 0:
				b.WriteByte('.')
			case c < 10:
				b.WriteByte(byte('0' + c))
			default:
				b.WriteByte('*')
			}
		}
		fmt.Println(b.String())
	}
	fmt.Println()

	var degG, degGp stats.Summary
	for u := 0; u < d.N(); u++ {
		degG.AddInt(d.G.Degree(u))
		degGp.AddInt(d.Gp.Degree(u))
	}
	tbl := &stats.Table{Title: "degree summary", Columns: []string{"graph", "mean", "max"}}
	tbl.AddRow("G (reliable)", degG.Mean(), degG.Max())
	tbl.AddRow("G' (all links)", degGp.Mean(), degGp.Max())
	idx := geo.BuildGridIndex(d.Emb)
	g := geo.BuildRegionGraph(idx.Regions(), r)
	ok, region, hops, count := g.CheckFBounded(3)
	if ok {
		tbl.Notes = append(tbl.Notes, "region partition is f-bounded for h ≤ 3 (Lemma A.1)")
	} else {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("f-bound VIOLATION at %v: %d regions within %d hops", region, count, hops))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if phases > 0 {
		return timeline(d, seed, phases)
	}
	return nil
}

// timeline runs LBAlg with a few saturated senders and renders per-phase
// channel activity as sparkline rows (one character per PhaseLen/60 rounds).
func timeline(d *dualgraph.Dual, seed uint64, phases int) error {
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), d.R, 0.2)
	if err != nil {
		return err
	}
	procs := make([]sim.Process, d.N())
	svcs := make([]core.Service, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		procs[u] = alg
		svcs[u] = alg
	}
	senders := []int{0}
	if d.N() > 3 {
		senders = []int{0, 1, 2}
	}
	env := core.NewSaturatingEnv(svcs, senders)
	tr := &sim.Trace{SampleRounds: true}
	e, err := sim.New(sim.Config{Dual: d, Procs: procs,
		Sched: sched.NewRandom(0.5, seed), Env: env, Seed: seed, Trace: tr})
	if err != nil {
		return err
	}
	e.Run(phases * p.PhaseLen())

	const width = 60
	bucket := (p.PhaseLen() + width - 1) / width
	marks := []byte(" .:-=+*#%@")
	fmt.Printf("activity timeline: %d phases × %d rounds (preamble %d + body %d); one char ≈ %d rounds\n",
		phases, p.PhaseLen(), p.Ts, p.Tprog, bucket)
	fmt.Printf("density scale %q (transmissions per round per node)\n\n", marks)
	for ph := 0; ph < phases; ph++ {
		var line strings.Builder
		for b := 0; b < width; b++ {
			lo := ph*p.PhaseLen() + b*bucket
			hi := lo + bucket
			if hi > (ph+1)*p.PhaseLen() {
				hi = (ph + 1) * p.PhaseLen()
			}
			tx := 0
			for i := lo; i < hi && i < len(tr.PerRound); i++ {
				tx += tr.PerRound[i].Transmissions
			}
			rounds := hi - lo
			if rounds <= 0 {
				break
			}
			density := float64(tx) / float64(rounds*d.N())
			idx := int(density * float64(len(marks)) * 4) // ≥25% density saturates
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			line.WriteByte(marks[idx])
		}
		boundary := p.Ts * width / p.PhaseLen()
		fmt.Printf("phase %2d |%s|  (preamble ends ≈ col %d)\n", ph+1, line.String(), boundary)
	}
	return nil
}
