// Command lbviz renders an ASCII picture of a dual graph embedding: node
// positions over the Lemma A.1 grid region partition, plus degree and
// region-occupancy summaries. It is a debugging aid for the geometric
// substrate.
//
// Usage:
//
//	lbviz -n 60 -w 8 -h 6 -r 1.5 -seed 3
package main
