// Command lbsim runs one local broadcast configuration and prints a
// specification report: deterministic condition violations, reliability and
// progress rates, latency quantiles and channel statistics.
//
// Usage:
//
//	lbsim -topo cluster -n 16 -eps 0.1 -sched random -phases 8
//	lbsim -exp comparison -size small -out comparison.json
//
// The first form assembles a dual graph topology, runs LBAlg on every node
// under the chosen link scheduler, and checks the execution trace against
// the LB(t_ack, t_prog, ε) specification.
//
// The second form runs the comparison subsystem instead: LBAlg vs the SINR
// local broadcast layer vs the GHLN contention baselines, head to head over
// the scaling-sweep topologies, rendering the comparison table and writing
// the machine-readable JSON report (schema lbcast-comparison/v1, see
// docs/EXPERIMENTS.md).
package main
