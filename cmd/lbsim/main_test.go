package main

import (
	"strings"
	"testing"

	"lbcast/internal/world"
)

// TestUnknownExpError pins the unknown-experiment UX: the error must name
// the rejected experiment and enumerate every valid -exp mode (main exits
// non-zero on any runExp error).
func TestUnknownExpError(t *testing.T) {
	err := runExp("bogus", "small", 1, "", "", nil)
	if err == nil {
		t.Fatal("runExp accepted an unknown experiment")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error does not name the rejected experiment: %q", msg)
	}
	for _, mode := range expModes {
		if !strings.Contains(msg, mode) {
			t.Errorf("error does not list valid experiment %q: %q", mode, msg)
		}
	}
}

// TestExpModesComplete keeps the enumerated list in sync with the dispatch:
// every registered mode must be distinct and include the four subsystems.
func TestExpModesComplete(t *testing.T) {
	want := map[string]bool{"chaos": true, "churn": true, "comparison": true, "load": true}
	seen := map[string]bool{}
	for _, m := range expModes {
		if seen[m] {
			t.Errorf("duplicate mode %q", m)
		}
		seen[m] = true
		delete(want, m)
	}
	for m := range want {
		t.Errorf("expModes missing %q", m)
	}
}

// TestBadSizeError covers the other rejection path shared by all modes.
func TestBadSizeError(t *testing.T) {
	if err := runExp("load", "giant", 1, "", "", nil); err == nil {
		t.Error("runExp accepted an unknown size")
	}
}

// TestUnknownPolicyError pins the -policies UX: an unknown policy name
// fails (main exits non-zero) and the error enumerates the registered set.
func TestUnknownPolicyError(t *testing.T) {
	for _, mode := range []string{"comparison", "churn", "load"} {
		err := runExp(mode, "small", 1, "", "", []string{"bogus"})
		if err == nil {
			t.Errorf("%s accepted an unknown policy", mode)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, `"bogus"`) {
			t.Errorf("%s error does not name the rejected policy: %q", mode, msg)
		}
		for _, name := range world.Names() {
			if !strings.Contains(msg, name) {
				t.Errorf("%s error does not list registered policy %q: %q", mode, name, msg)
			}
		}
	}
	if err := runExp("chaos", "small", 1, "", "", []string{"lbalg"}); err == nil {
		t.Error("chaos accepted a -policies selection")
	}
}

// TestSplitPolicies covers the flag parsing helper.
func TestSplitPolicies(t *testing.T) {
	if got := splitPolicies(""); got != nil {
		t.Errorf("empty flag parsed as %v, want nil (default set)", got)
	}
	got := splitPolicies(" lbalg, decay ,")
	if len(got) != 2 || got[0] != "lbalg" || got[1] != "decay" {
		t.Errorf("splitPolicies = %v, want [lbalg decay]", got)
	}
}

// TestListPolicies checks the -policies list mode prints every registered
// name with its description.
func TestListPolicies(t *testing.T) {
	var sb strings.Builder
	listPolicies(&sb)
	out := sb.String()
	for _, p := range world.All() {
		if !strings.Contains(out, p.Name) {
			t.Errorf("listing missing policy %q", p.Name)
		}
		if !strings.Contains(out, p.Description) {
			t.Errorf("listing missing description for %q", p.Name)
		}
	}
}
