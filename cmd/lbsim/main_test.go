package main

import (
	"strings"
	"testing"
)

// TestUnknownExpError pins the unknown-experiment UX: the error must name
// the rejected experiment and enumerate every valid -exp mode (main exits
// non-zero on any runExp error).
func TestUnknownExpError(t *testing.T) {
	err := runExp("bogus", "small", 1, "", "")
	if err == nil {
		t.Fatal("runExp accepted an unknown experiment")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error does not name the rejected experiment: %q", msg)
	}
	for _, mode := range expModes {
		if !strings.Contains(msg, mode) {
			t.Errorf("error does not list valid experiment %q: %q", mode, msg)
		}
	}
}

// TestExpModesComplete keeps the enumerated list in sync with the dispatch:
// every registered mode must be distinct and include the four subsystems.
func TestExpModesComplete(t *testing.T) {
	want := map[string]bool{"chaos": true, "churn": true, "comparison": true, "load": true}
	seen := map[string]bool{}
	for _, m := range expModes {
		if seen[m] {
			t.Errorf("duplicate mode %q", m)
		}
		seen[m] = true
		delete(want, m)
	}
	for m := range want {
		t.Errorf("expModes missing %q", m)
	}
}

// TestBadSizeError covers the other rejection path shared by all modes.
func TestBadSizeError(t *testing.T) {
	if err := runExp("load", "giant", 1, "", ""); err == nil {
		t.Error("runExp accepted an unknown size")
	}
}
