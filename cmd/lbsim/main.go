package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lbcast/internal/chaos"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/exp"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/world"
	"lbcast/internal/xrand"
)

func main() {
	var (
		topo      = flag.String("topo", "cluster", "topology: cluster|geometric|twotier|line|grid")
		n         = flag.Int("n", 16, "node count (side² for grid; clusters×size for twotier)")
		r         = flag.Float64("r", 1.5, "geographic parameter r ≥ 1")
		eps       = flag.Float64("eps", 0.1, "error bound ε₁ ∈ (0, ½]")
		schedN    = flag.String("sched", "random", "link scheduler: never|always|random|periodic|antidecay")
		schedP    = flag.Float64("sched-p", 0.5, "inclusion probability for -sched random")
		phases    = flag.Int("phases", 6, "LBAlg phases to run")
		senders   = flag.Int("senders", 3, "number of saturated senders")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		traceFile = flag.String("trace", "", "write the execution trace as JSON to this file")
		expFlag   = flag.String("exp", "", "subsystem to run instead of the single-configuration report: comparison|churn|chaos|load")
		sizeFlag  = flag.String("size", "small", "scale for -exp runs: small|medium|full")
		outFile   = flag.String("out", "", "JSON output path for -exp runs (default <exp>.json)")
		reproFile = flag.String("repro", "", "with -exp chaos: replay this lbcast-chaos/v1 scenario instead of searching")
		policies  = flag.String("policies", "", "comma-separated policy names for -exp comparison|churn|load (default: the experiment's own set); \"list\" prints the registry and exits")
	)
	flag.Usage = usage
	flag.Parse()
	if *policies == "list" {
		listPolicies(os.Stdout)
		return
	}
	if *expFlag != "" {
		if err := runExp(*expFlag, *sizeFlag, *seed, *outFile, *reproFile, splitPolicies(*policies)); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*topo, *n, *r, *eps, *schedN, *schedP, *phases, *senders, *seed, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

// usage renders the synopsis of every operating mode ahead of the flag
// list, so `lbsim -help` documents the -exp subsystems and their output
// schemas (the lbbench -help pattern).
func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `lbsim runs the local broadcast layer and its experiment subsystems.

Modes:
  lbsim [-topo T] [-n N] [-sched S] [-phases P] [-senders K] [-seed N] [-trace out.json]
      single-configuration run: LBAlg over the chosen topology/scheduler,
      post-hoc lbspec.Check report on stdout; -trace writes the execution
      trace (lbcast-trace/v1)
  lbsim -exp comparison [-size small|medium|full] [-seed N] [-policies a,b] [-out comparison.json]
      E-COMPARE matrix: every registered policy (or the -policies subset)
      on identical cloned topologies across n (lbcast-comparison/v2)
  lbsim -exp churn [-size ...] [-seed N] [-policies a,b] [-out churn.json]
      E-CHURN matrix: the same policies degrading under identical Poisson
      fault schedules (lbcast-churn/v2)
  lbsim -exp chaos [-size ...] [-seed N] [-out chaos.json]
      E-CHAOS: bounded randomized scenario search with the online invariant
      monitor attached, plus a seeded-fault shrinking canary
      (lbcast-chaos-report/v1; scenarios embed lbcast-chaos/v1). A real
      violation writes its minimized scenario to repro.json and exits 1
  lbsim -exp chaos -repro repro.json
      deterministically replay a minimized lbcast-chaos/v1 scenario and
      print its monitor verdict
  lbsim -exp load [-size ...] [-seed N] [-policies a,b] [-out load.json]
      E-LOAD matrix: the open-loop traffic engine sweeping offered load
      across the selected policies on identical arrival schedules, plus
      the preset scenarios (lbcast-load/v2; recorded arrival schedules
      replay via lbcast-load-trace/v1)
  lbsim -policies list
      print the policy registry: every name -policies accepts, with a
      one-line description

Flags:
`)
	flag.PrintDefaults()
}

// expModes lists the valid -exp subsystem names. The unknown-experiment
// error enumerates this list (and main_test.go pins that every mode
// appears in it), so keep it in sync with runExp's dispatch switch.
var expModes = []string{"chaos", "churn", "comparison", "load"}

// splitPolicies turns the -policies flag value into a selection for the
// world registry; empty means "use the experiment's default set".
func splitPolicies(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	names := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// listPolicies renders the policy registry: every name the -policies flag
// accepts, with its one-line description.
func listPolicies(w io.Writer) {
	fmt.Fprintln(w, "registered policies (usable with -exp comparison|churn|load):")
	for _, p := range world.All() {
		fmt.Fprintf(w, "  %-20s %s\n", p.Name, p.Description)
	}
}

// runExp dispatches the -exp subsystems: the comparison matrix (LBAlg vs
// the SINR local broadcast layer vs the GHLN contention baselines), the
// churn matrix (the same contenders degrading under identical Poisson
// fault schedules), the chaos search (randomized scenarios with the
// online monitor attached), and the open-loop load matrix (the traffic
// engine's knee curves). Each renders a table and writes machine-readable
// JSON. A non-nil policies selection replaces the experiment's default
// contender set; unknown names fail with the registered set spelled out.
func runExp(name, sizeName string, seed uint64, outFile, reproFile string, policies []string) error {
	if reproFile != "" {
		if name != "chaos" {
			return fmt.Errorf("-repro only applies to -exp chaos")
		}
		return replayRepro(reproFile)
	}
	size, err := exp.ParseSize(sizeName)
	if err != nil {
		return err
	}
	var (
		tbl      *stats.Table
		writeFn  func(io.Writer) error
		rowCount int
		violated *chaos.Scenario
	)
	switch name {
	case "comparison":
		rep, err := exp.RunComparisonPolicies(size, seed, policies, 0)
		if err != nil {
			return err
		}
		tbl, writeFn, rowCount = exp.ComparisonTable(rep), rep.WriteJSON, len(rep.Rows)
		if outFile == "" {
			outFile = "comparison.json"
		}
	case "churn":
		rep, err := exp.RunChurnPolicies(size, seed, policies, 0)
		if err != nil {
			return err
		}
		tbl, writeFn, rowCount = exp.ChurnTable(rep), rep.WriteJSON, len(rep.Rows)
		if outFile == "" {
			outFile = "churn.json"
		}
	case "chaos":
		if policies != nil {
			return fmt.Errorf("-policies does not apply to -exp chaos")
		}
		rep, err := exp.RunChaos(size, seed)
		if err != nil {
			return err
		}
		tbl, writeFn, rowCount = exp.ChaosTable(rep), rep.WriteJSON, rep.Trials
		violated = rep.Violation
		if outFile == "" {
			outFile = "chaos.json"
		}
	case "load":
		rep, err := exp.RunLoadPolicies(size, seed, policies, 0)
		if err != nil {
			return err
		}
		tbl, writeFn, rowCount = exp.LoadTable(rep), rep.WriteJSON, len(rep.Rows)+len(rep.Scenarios)
		if outFile == "" {
			outFile = "load.json"
		}
	default:
		return fmt.Errorf("unknown -exp %q (valid experiments: %s)", name, strings.Join(expModes, ", "))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	if err := writeFn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s table written to %s (%d rows)\n", name, outFile, rowCount)
	if violated != nil {
		if err := violated.WriteFile("repro.json"); err != nil {
			return err
		}
		return fmt.Errorf("chaos search found a real invariant violation; minimized scenario written to repro.json (replay: lbsim -exp chaos -repro repro.json)")
	}
	return nil
}

// replayRepro deterministically re-executes a minimized lbcast-chaos/v1
// scenario and prints the monitor verdict.
func replayRepro(path string) error {
	sc, err := chaos.ReadScenarioFile(path)
	if err != nil {
		return err
	}
	res, err := chaos.Run(sc, chaos.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("scenario: seed=%d n=%d phases=%d model=%s sched=%s senders=%d churn-events=%d\n",
		sc.Seed, sc.N, sc.Phases, sc.Model, sc.Sched, sc.Senders, planEventCount(sc))
	if sc.Fault != nil {
		fmt.Printf("seeded fault: %s @ node %d\n", sc.Fault.Kind, sc.Fault.Node)
	}
	fmt.Printf("ran %d/%d rounds (phase length %d)\n", res.Rounds, res.Planned, res.PhaseLen)
	if res.Total == 0 {
		fmt.Println("verdict: clean — the scenario no longer violates")
		return nil
	}
	fmt.Printf("verdict: %d violation(s)\n", res.Total)
	for i, v := range res.Violations {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", res.Total-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	return nil
}

// planEventCount is a nil-safe lifecycle-event count.
func planEventCount(sc *chaos.Scenario) int {
	if sc.Plan == nil {
		return 0
	}
	return len(sc.Plan.Events)
}

func run(topo string, n int, r, eps float64, schedName string, schedP float64, phases, senders int, seed uint64, traceFile string) error {
	rng := xrand.New(seed)
	var (
		d   *dualgraph.Dual
		err error
	)
	switch topo {
	case "cluster":
		d, err = dualgraph.SingleHopCluster(n, 1, rng)
	case "geometric":
		side := 1 + float64(n)/12
		d, err = dualgraph.RandomGeometric(n, side, side, r, dualgraph.GreyUnreliable, rng)
	case "twotier":
		k := 3
		d, err = dualgraph.TwoTierClusters(k, (n+k-1)/k, maxf(r, 1.5), rng)
	case "line":
		d, err = dualgraph.Line(n, 1, r, rng)
	case "grid":
		side := 2
		for side*side < n {
			side++
		}
		d, err = dualgraph.GridLattice(side, 1, r, rng)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return err
	}

	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), maxf(d.R, 1), eps)
	if err != nil {
		return err
	}

	var linkSched sim.LinkScheduler
	switch schedName {
	case "never":
		linkSched = sched.Never{}
	case "always":
		linkSched = sched.Always{}
	case "random":
		linkSched = sched.NewRandom(schedP, seed)
	case "periodic":
		linkSched = sched.Periodic{Period: 8, OnRounds: 3}
	case "antidecay":
		linkSched = sched.AntiDecay{CycleLen: p.LogDelta}
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}

	if senders > d.N() {
		senders = d.N()
	}
	plan := core.NewPhasePlan(p)
	procs := make([]*core.LBAlg, d.N())
	simProcs := make([]sim.Process, d.N())
	svcs := make([]core.Service, d.N())
	for u := 0; u < d.N(); u++ {
		procs[u] = core.NewLBAlgWithPlan(plan)
		simProcs[u] = procs[u]
		svcs[u] = procs[u]
	}
	senderIDs := make([]int, senders)
	for i := range senderIDs {
		senderIDs[i] = i
	}
	env := core.NewSaturatingEnv(svcs, senderIDs)
	engine, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: linkSched, Env: env, Seed: seed})
	if err != nil {
		return err
	}
	rounds := phases * p.PhaseLen()
	engine.Run(rounds)
	tr := engine.Trace()
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events)\n", traceFile, tr.Len())
	}
	rep := lbspec.Check(d, tr, p.TAckBound(), p.TProgBound())

	fmt.Printf("configuration: topo=%s n=%d Δ=%d Δ'=%d r=%v ε=%v sched=%s seed=%d\n",
		topo, d.N(), d.Delta(), d.DeltaPrime(), d.R, eps, schedName, seed)
	fmt.Printf("schedule: Ts=%d Tprog=%d phase=%d t_prog=%d Tack=%d phases t_ack=%d rounds\n",
		p.Ts, p.Tprog, p.PhaseLen(), p.TProgBound(), p.Tack, p.TAckBound())
	fmt.Printf("ran %d rounds (%d phases)\n\n", rounds, phases)

	tbl := &stats.Table{Title: "specification report", Columns: []string{"metric", "value"}}
	tbl.AddRow("deterministic violations", len(rep.Violations))
	tbl.AddRow("broadcasts completed", rep.Broadcasts)
	tbl.AddRow("reliability", stats.FormatRate(rep.ReliableSuccesses, rep.Broadcasts))
	tbl.AddRow("progress", stats.FormatRate(rep.ProgressSuccesses, rep.ProgressOpportunities))
	if len(rep.AckLatencies) > 0 {
		tbl.AddRow("ack latency p50/p95 (rounds)", fmt.Sprintf("%.0f / %.0f",
			stats.QuantileInts(rep.AckLatencies, 0.5), stats.QuantileInts(rep.AckLatencies, 0.95)))
	}
	tbl.AddRow("transmissions", tr.Transmissions)
	tbl.AddRow("deliveries", tr.Deliveries)
	tbl.AddRow("collisions", tr.Collisions)
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return rep.Err()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
