// Command lbbench runs the experiment suite that reproduces every
// quantitative claim of the paper and prints the docs/EXPERIMENTS.md tables.
//
// Usage:
//
//	lbbench [-exp E-PROG[,E-ACK,...]] [-size small|medium|full] [-seed N] [-list]
//	lbbench -benchjson BENCH_pr2.json [-benchiters N] [-gobench gotest.txt] [-note "..."]
//	lbbench -sweep [-sweepn 100,1000,10000,100000] [-sweepworkers 1,2,4] [-compare] [-benchjson BENCH_pr2.json]
//	lbbench -baseline BENCH_pr1.json -gobench gotest.txt [-gatebench BenchmarkNetworkRound] [-gatelimit 1.20]
//
// With -benchjson, lbbench measures each selected experiment (ns/op,
// B/op, allocs/op) instead of rendering tables and writes the
// machine-readable BENCH_*.json used to track the performance trajectory
// across PRs; -gobench merges a saved `go test -bench` output into the
// same file.
//
// With -sweep, lbbench measures raw engine round throughput across
// n × scheduler × driver (the large-n scaling sweep); -sweepworkers adds
// one workerpool row per listed pool size (the multi-core CI matrix passes
// 1,2,4 to record the parallel-scatter speedup curve). Combined with
// -benchjson the points are embedded in the JSON's "sweep" section,
// otherwise the table is printed. -compare (alone or alongside -sweep)
// runs the algorithm comparison matrix — LBAlg vs the SINR local broadcast
// layer vs the GHLN contention baselines (experiment E-COMPARE) — at the
// chosen -size, rendering the table or embedding the report in the JSON's
// "comparison" section.
//
// With -baseline, lbbench compares the -gobench measurements against the
// named benchmarks in a committed BENCH_*.json and exits non-zero when
// ns/op regressed by more than -gatelimit× — the CI regression gate.
package main
