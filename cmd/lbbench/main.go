package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lbcast/internal/exp"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		sizeFlag  = flag.String("size", "medium", "experiment scale: small|medium|full")
		seedFlag  = flag.Uint64("seed", 1, "experiment seed")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")
		benchJSON = flag.String("benchjson", "", "measure experiments and write BENCH_*.json to this path instead of rendering tables")
		benchIt   = flag.Int("benchiters", 1, "iterations per experiment for -benchjson")
		goBench   = flag.String("gobench", "", "merge a saved `go test -bench` output file into -benchjson (also the input of -baseline)")
		noteFlag  = flag.String("note", "", "free-form note recorded in -benchjson (e.g. the baseline being compared against)")
		sweep     = flag.Bool("sweep", false, "run the engine scaling sweep (n × scheduler × driver)")
		sweepN    = flag.String("sweepn", "100,1000,10000,100000", "comma-separated network sizes for -sweep")
		sweepMax  = flag.Int("sweepmax", 0, "append one extra network size to -sweepn (e.g. 1000000 for the million-node row; sizes beyond 100000 run the bounded never-scheduler smoke without a SINR row)")
		sweepP    = flag.Float64("sweepp", 0.1, "per-node transmit probability for -sweep")
		sweepW    = flag.String("sweepworkers", "", "comma-separated worker-pool sizes for -sweep's workerpool rows (default: GOMAXPROCS); the multi-core CI matrix passes 1,2,4 to record the parallel-scatter speedup curve")
		compare   = flag.Bool("compare", false, "run the algorithm comparison matrix (LBAlg vs SINR layer vs contention baselines) at -size; renders the table, or embeds it in -benchjson")
		loadF     = flag.Bool("load", false, "run the open-loop traffic matrix (E-LOAD knee curves) at -size; renders the table, or embeds it in -benchjson")
		policiesF = flag.String("policies", "", "comma-separated policy names for -compare and -load (default: each matrix's own set; see `lbsim -policies list`)")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json to gate -gobench measurements against")
		gateBench = flag.String("gatebench", "BenchmarkNetworkRound", "comma-separated benchmark names for the -baseline gate")
		gateLimit = flag.Float64("gatelimit", 1.20, "fail the -baseline gate when current/baseline ns/op exceeds this ratio")
	)
	flag.Usage = usage
	flag.Parse()

	if *listFlag {
		for _, e := range exp.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Claim)
		}
		return
	}

	if *baseline != "" {
		if err := runGate(*baseline, *goBench, *gateBench, *gateLimit); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	size, err := exp.ParseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sweepPoints []exp.SweepPoint
	var consPoints []exp.ConstructionPoint
	var compareRep *exp.ComparisonReport
	if *sweep {
		ns, err := parseIntList(*sweepN, "-sweepn")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *sweepMax > 0 {
			ns = append(ns, *sweepMax)
		}
		var workers []int
		if *sweepW != "" {
			if workers, err = parseIntList(*sweepW, "-sweepworkers"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		sweepPoints, consPoints, err = exp.RunScalingSweep(ns, *seedFlag, *sweepP, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	policies := splitPolicies(*policiesF)
	if *compare {
		var err error
		compareRep, err = exp.RunComparisonPolicies(size, *seedFlag, policies, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var loadRep *exp.LoadReport
	if *loadF {
		var err error
		loadRep, err = exp.RunLoadPolicies(size, *seedFlag, policies, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sweep || *compare || *loadF {
		// Tables go to stdout when they are the final product, to stderr
		// when -benchjson makes the JSON file the product.
		out := os.Stderr
		if *benchJSON == "" {
			out = os.Stdout
		}
		if consPoints != nil {
			if err := exp.ConstructionTable(consPoints).Render(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if sweepPoints != nil {
			if err := exp.SweepTable(sweepPoints).Render(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if compareRep != nil {
			if err := exp.ComparisonTable(compareRep).Render(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if loadRep != nil {
			if err := exp.LoadTable(loadRep).Render(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *benchJSON == "" {
			return
		}
	}

	var todo []exp.Experiment
	if *expFlag == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, todo, size, *sizeFlag, *seedFlag, *benchIt,
			*goBench, *noteFlag, sweepPoints, consPoints, compareRep, loadRep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(size, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("# %s — %s (%.1fs)\n\n", res.ID, res.Claim, time.Since(start).Seconds())
		for _, tbl := range res.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// usage renders the synopsis of every operating mode ahead of the flag
// list, so `lbbench -help` documents how -sweep, -compare, -benchjson and
// the -baseline regression gate combine.
func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `lbbench reproduces the paper's quantitative claims and tracks engine
performance across PRs.

Modes:
  lbbench [-exp E-PROG,...] [-size small|medium|full] [-seed N]
      render the experiment tables (default: all experiments)
  lbbench -list
      list experiment IDs
  lbbench -benchjson BENCH_x.json [-benchiters N] [-gobench gotest.txt] [-note "..."]
      measure experiments into a machine-readable BENCH_*.json
  lbbench -sweep [-sweepn 100,1000] [-sweepmax 1000000] [-sweepworkers 1,2,4] [-compare] [-load] [-policies a,b] [-benchjson ...]
      engine scaling sweep (n × scheduler × driver rounds/sec, with
      allocs/round and peak-RSS columns); -sweepmax appends the large-n
      smoke row; -compare adds the registered-policy comparison matrix
      (E-COMPARE), -load the open-loop traffic knee matrix (E-LOAD);
      -policies restricts either to a subset of the policy registry
  lbbench -baseline BENCH_x.json -gobench gotest.txt [-gatebench A,B] [-gatelimit 1.20]
      CI regression gate: fail when a named benchmark's ns/op — or its
      allocs/op, when both sides carry -benchmem data — exceeds
      gatelimit × the committed baseline

Flags:
`)
	flag.PrintDefaults()
}

// splitPolicies turns the -policies flag value into a selection for the
// comparison/load matrices; empty means each matrix's default set.
func splitPolicies(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	names := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// parseIntList parses a comma-separated integer list flag.
func parseIntList(s, flagName string) ([]int, error) {
	var ns []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, f, err)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("%s is empty", flagName)
	}
	return ns, nil
}

// runGate compares the current -gobench measurements against the committed
// baseline file and fails on a >limit× ns/op regression. Both sides take the
// minimum over repeated runs of the same benchmark (use `go test -count N`),
// damping scheduler noise.
func runGate(baselinePath, goBenchPath, names string, limit float64) error {
	if goBenchPath == "" {
		return fmt.Errorf("-baseline needs -gobench with the current `go test -bench` output")
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	base, err := exp.ReadBenchFile(bf)
	if err != nil {
		return err
	}
	gf, err := os.Open(goBenchPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	gb, err := exp.ParseGoBench(gf)
	if err != nil {
		return err
	}
	cur := exp.BenchFile{GoTest: gb}

	failed := 0
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		baseNs, ok := base.MinGoBenchNs(name)
		if !ok {
			return fmt.Errorf("baseline %s has no entry for %s", baselinePath, name)
		}
		curNs, ok := cur.MinGoBenchNs(name)
		if !ok {
			return fmt.Errorf("%s has no entry for %s", goBenchPath, name)
		}
		ratio := curNs / baseNs
		status := "ok"
		if ratio > limit {
			status = fmt.Sprintf("REGRESSION (> %.2fx)", limit)
			failed++
		}
		fmt.Printf("%-32s baseline %12.0f ns/op  current %12.0f ns/op  ratio %.3f  %s\n",
			name, baseNs, curNs, ratio, status)
		// Allocation gate: allocs/op is near-deterministic, so the same
		// ratio limit catches accidental per-round allocations long before
		// they show up in wall time. Skipped when either side lacks
		// -benchmem data (older baselines).
		baseAllocs, ok := base.MinGoBenchAllocs(name)
		if !ok {
			continue
		}
		curAllocs, ok := cur.MinGoBenchAllocs(name)
		if !ok {
			continue
		}
		aRatio := float64(curAllocs) / float64(baseAllocs)
		status = "ok"
		if aRatio > limit {
			status = fmt.Sprintf("REGRESSION (> %.2fx)", limit)
			failed++
		}
		fmt.Printf("%-32s baseline %12d allocs/op current %11d allocs/op ratio %.3f  %s\n",
			"", baseAllocs, curAllocs, aRatio, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark measurement(s) regressed beyond %.2fx of %s", failed, limit, baselinePath)
	}
	return nil
}

// writeBenchJSON measures every selected experiment and writes the
// machine-readable benchmark file.
func writeBenchJSON(path string, todo []exp.Experiment, size exp.Size, sizeName string,
	seed uint64, iters int, goBenchPath, note string, sweepPoints []exp.SweepPoint,
	consPoints []exp.ConstructionPoint, compareRep *exp.ComparisonReport,
	loadRep *exp.LoadReport) error {
	file := exp.BenchFile{
		Note:         note,
		GoVersion:    runtime.Version(),
		Size:         sizeName,
		Seed:         seed,
		Sweep:        sweepPoints,
		Construction: consPoints,
		Comparison:   compareRep,
		Load:         loadRep,
	}
	for _, e := range todo {
		r, err := exp.MeasureExperiment(e, size, seed, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-14s %12d ns/op %10d B/op %8d allocs/op\n",
			r.ID, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		file.Results = append(file.Results, r)
	}
	if goBenchPath != "" {
		f, err := os.Open(goBenchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		gb, err := exp.ParseGoBench(f)
		if err != nil {
			return err
		}
		file.GoTest = gb
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := file.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
