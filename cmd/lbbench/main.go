// Command lbbench runs the experiment suite that reproduces every
// quantitative claim of the paper and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	lbbench [-exp E-PROG[,E-ACK,...]] [-size small|medium|full] [-seed N] [-list]
//	lbbench -benchjson BENCH_pr1.json [-benchiters N] [-gobench gotest.txt] [-note "..."]
//
// With -benchjson, lbbench measures each selected experiment (ns/op,
// B/op, allocs/op) instead of rendering tables and writes the
// machine-readable BENCH_*.json used to track the performance trajectory
// across PRs; -gobench merges a saved `go test -bench` output into the
// same file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lbcast/internal/exp"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		sizeFlag  = flag.String("size", "medium", "experiment scale: small|medium|full")
		seedFlag  = flag.Uint64("seed", 1, "experiment seed")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")
		benchJSON = flag.String("benchjson", "", "measure experiments and write BENCH_*.json to this path instead of rendering tables")
		benchIt   = flag.Int("benchiters", 1, "iterations per experiment for -benchjson")
		goBench   = flag.String("gobench", "", "merge a saved `go test -bench` output file into -benchjson")
		noteFlag  = flag.String("note", "", "free-form note recorded in -benchjson (e.g. the baseline being compared against)")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range exp.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Claim)
		}
		return
	}

	size, err := exp.ParseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var todo []exp.Experiment
	if *expFlag == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, todo, size, *sizeFlag, *seedFlag, *benchIt, *goBench, *noteFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(size, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("# %s — %s (%.1fs)\n\n", res.ID, res.Claim, time.Since(start).Seconds())
		for _, tbl := range res.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeBenchJSON measures every selected experiment and writes the
// machine-readable benchmark file.
func writeBenchJSON(path string, todo []exp.Experiment, size exp.Size, sizeName string,
	seed uint64, iters int, goBenchPath, note string) error {
	file := exp.BenchFile{
		Note:      note,
		GoVersion: runtime.Version(),
		Size:      sizeName,
		Seed:      seed,
	}
	for _, e := range todo {
		r, err := exp.MeasureExperiment(e, size, seed, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-14s %12d ns/op %10d B/op %8d allocs/op\n",
			r.ID, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		file.Results = append(file.Results, r)
	}
	if goBenchPath != "" {
		f, err := os.Open(goBenchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		gb, err := exp.ParseGoBench(f)
		if err != nil {
			return err
		}
		file.GoTest = gb
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := file.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
