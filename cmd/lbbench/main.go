// Command lbbench runs the experiment suite that reproduces every
// quantitative claim of the paper and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	lbbench [-exp E-PROG[,E-ACK,...]] [-size small|medium|full] [-seed N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lbcast/internal/exp"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		sizeFlag = flag.String("size", "medium", "experiment scale: small|medium|full")
		seedFlag = flag.Uint64("seed", 1, "experiment seed")
		listFlag = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range exp.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Claim)
		}
		return
	}

	size, err := exp.ParseSize(*sizeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var todo []exp.Experiment
	if *expFlag == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	failed := 0
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(size, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("# %s — %s (%.1fs)\n\n", res.ID, res.Claim, time.Since(start).Seconds())
		for _, tbl := range res.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
